"""One-stop observability session: wire every sink with one call.

:class:`ObsSession` bundles the standard sinks over one engine's bus:

* a :class:`~repro.obs.contention.ContentionSink` (channel/stage
  utilization and blocked-time attribution),
* a :class:`~repro.obs.profiler.KernelProfiler` (sim-kernel rates),
* latency histograms (creation->delivery and injection->delivery,
  HDR-style p50/p95/p99),
* optionally a :class:`~repro.obs.perfetto.PerfettoSink`
  (``trace=True``) for timeline export.

Usage::

    eng = build_engine(...)
    with ObsSession(eng, trace=True) as obs:
        run_workload(eng)
    print(obs.report())
    obs.write_trace("run.json")

The context manager detaches every sink on exit, restoring the bus's
zero-cost fast path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Union

from repro.obs.contention import ContentionSink
from repro.obs.histogram import LatencyHistogram
from repro.obs.perfetto import PerfettoSink
from repro.obs.profiler import KernelProfiler

if TYPE_CHECKING:  # pragma: no cover
    from repro.wormhole.engine import WormholeEngine
    from repro.wormhole.packet import Packet


class ObsSession:
    """Attach the standard observability sinks to one engine."""

    def __init__(
        self,
        engine: "WormholeEngine",
        trace: bool = False,
        bucket: float = 256.0,
        sub_bucket_bits: int = 5,
        perfetto_max_events: int = 2_000_000,
    ) -> None:
        self.engine = engine
        self.contention = ContentionSink(bucket=bucket).install(engine)
        self.profiler = KernelProfiler().install(engine)
        self.perfetto: Optional[PerfettoSink] = None
        if trace:
            self.perfetto = PerfettoSink(
                max_events=perfetto_max_events
            ).install(engine)
        #: Creation -> tail delivery (queueing included), in cycles.
        self.latency = LatencyHistogram(sub_bucket_bits)
        #: Injection start -> tail delivery, in cycles.
        self.network_latency = LatencyHistogram(sub_bucket_bits)
        self._attached = False
        bus = engine.bus
        bus.attach(self.contention)
        if self.perfetto is not None:
            bus.attach(self.perfetto)
        bus.attach(self)  # our own on_deliver below
        self._attached = True
        self._finished = False

    # -- bus callback ------------------------------------------------------

    def on_deliver(self, t: float, packet: "Packet") -> None:
        self.latency.record(t - packet.created)
        if packet.inject_start is not None:
            self.network_latency.record(t - packet.inject_start)

    # -- lifecycle ---------------------------------------------------------

    def finish(self) -> "ObsSession":
        """Freeze every sink's observation window (idempotent)."""
        if self._finished:
            return self
        self._finished = True
        now = self.engine.env.now
        self.contention.finish(now)
        self.profiler.finish()
        if self.perfetto is not None:
            self.perfetto.finish(now)
        return self

    def detach(self) -> None:
        """Remove every sink from the bus (idempotent)."""
        if not self._attached:
            return
        self._attached = False
        bus = self.engine.bus
        bus.detach(self.contention)
        if self.perfetto is not None:
            bus.detach(self.perfetto)
        bus.detach(self)

    def close(self) -> "ObsSession":
        """finish() + detach()."""
        self.finish()
        self.detach()
        return self

    def __enter__(self) -> "ObsSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- export ------------------------------------------------------------

    def write_trace(self, path_or_file: Union[str, "object"]) -> int:
        """Write the Perfetto trace; requires ``trace=True``."""
        if self.perfetto is None:
            raise RuntimeError(
                "ObsSession was created with trace=False; "
                "pass trace=True to record a Perfetto timeline"
            )
        self.finish()
        return self.perfetto.write_trace(path_or_file)

    def to_dict(self) -> dict:
        self.finish()
        return {
            "elapsed_cycles": self.contention.elapsed,
            "latency": self.latency.to_dict(),
            "network_latency": self.network_latency.to_dict(),
            "stages": self.contention.stage_table(),
            "channels": self.contention.channel_rows(),
            "kernel": self.profiler.to_dict(),
        }

    def report(self) -> str:
        """Human-readable multi-section observability report."""
        self.finish()
        sections = [
            self.contention.render(),
            "",
            self.contention.stage_heatmap(),
            "",
            "latency (cycles, creation -> delivery):",
            self.latency.render(),
            "",
            self.profiler.render(),
        ]
        return "\n".join(sections)

    def __repr__(self) -> str:
        return (
            f"<ObsSession engine={self.engine!r} "
            f"trace={'on' if self.perfetto is not None else 'off'} "
            f"delivered={self.latency.count}>"
        )
