"""Sim-kernel profiling: how hard is the event kernel itself working?

The :class:`repro.sim.core.Environment` maintains three always-on
counters (plain integer increments, no branches):

* ``events_scheduled`` -- total ``heappush`` calls;
* ``events_fired`` -- total events popped and dispatched;
* ``max_heap_depth`` -- high-water mark of the pending-event heap.

:class:`KernelProfiler` snapshots those counters plus the wall clock
around an observation window and derives the roofline numbers the
ROADMAP's "as fast as the hardware allows" push needs: events/s,
cycles/s, and **wall-microseconds per simulated microsecond** (the
slowdown factor vs. the modelled hardware).

This is measurement of the *simulator*, not the simulated network --
the wall-clock reads are confined to this module and are exempt from
the RPV002 determinism lint (they never influence simulation state).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.wormhole.engine import WormholeEngine

#: Microseconds per simulation cycle (the paper's 20 flits/us).
CYCLE_MICROSECONDS = 0.05


class KernelProfiler:
    """Deltas of the kernel counters + wall clock over a window."""

    def __init__(self) -> None:
        self.engine: Optional["WormholeEngine"] = None
        self._t0_wall = 0.0
        self._t0_sim = 0.0
        self._t0_scheduled = 0
        self._t0_fired = 0
        self._t0_cycles = 0
        self._wall: Optional[float] = None
        self._sim: Optional[float] = None
        self._scheduled: Optional[int] = None
        self._fired: Optional[int] = None
        self._cycles: Optional[int] = None

    # -- lifecycle ---------------------------------------------------------

    def install(self, engine: "WormholeEngine") -> "KernelProfiler":
        """Snapshot the baseline (call at window start)."""
        self.engine = engine
        env = engine.env
        self._t0_wall = time.perf_counter()  # lint-sim: ignore[RPV002] -- profiling harness, not sim state
        self._t0_sim = env.now
        self._t0_scheduled = env.events_scheduled
        self._t0_fired = env.events_fired
        self._t0_cycles = engine.cycles_run
        return self

    def finish(self) -> "KernelProfiler":
        """Freeze the window (idempotent; keeps the first snapshot)."""
        if self._wall is not None:
            return self
        assert self.engine is not None, "install() before finish()"
        env = self.engine.env
        self._wall = time.perf_counter() - self._t0_wall  # lint-sim: ignore[RPV002] -- profiling harness, not sim state
        self._sim = env.now - self._t0_sim
        self._scheduled = env.events_scheduled - self._t0_scheduled
        self._fired = env.events_fired - self._t0_fired
        self._cycles = self.engine.cycles_run - self._t0_cycles
        return self

    # -- live reads (finish() freezes them) --------------------------------

    @property
    def wall_seconds(self) -> float:
        if self._wall is not None:
            return self._wall
        return time.perf_counter() - self._t0_wall  # lint-sim: ignore[RPV002] -- profiling harness, not sim state

    @property
    def sim_cycles_elapsed(self) -> float:
        if self._sim is not None:
            return self._sim
        assert self.engine is not None
        return self.engine.env.now - self._t0_sim

    @property
    def events_scheduled(self) -> int:
        if self._scheduled is not None:
            return self._scheduled
        assert self.engine is not None
        return self.engine.env.events_scheduled - self._t0_scheduled

    @property
    def events_fired(self) -> int:
        if self._fired is not None:
            return self._fired
        assert self.engine is not None
        return self.engine.env.events_fired - self._t0_fired

    @property
    def cycles_run(self) -> int:
        if self._cycles is not None:
            return self._cycles
        assert self.engine is not None
        return self.engine.cycles_run - self._t0_cycles

    @property
    def max_heap_depth(self) -> int:
        """High-water mark of the event heap (whole run, not a delta)."""
        assert self.engine is not None
        return self.engine.env.max_heap_depth

    # -- derived rates -----------------------------------------------------

    @property
    def sim_microseconds(self) -> float:
        """Simulated time covered, in the paper's microseconds."""
        return self.sim_cycles_elapsed * CYCLE_MICROSECONDS

    @property
    def events_per_second(self) -> float:
        wall = self.wall_seconds
        return self.events_fired / wall if wall > 0 else 0.0

    @property
    def cycles_per_second(self) -> float:
        wall = self.wall_seconds
        return self.cycles_run / wall if wall > 0 else 0.0

    @property
    def wall_us_per_sim_us(self) -> float:
        """Slowdown factor: wall microseconds spent per simulated us."""
        sim_us = self.sim_microseconds
        return (self.wall_seconds * 1e6) / sim_us if sim_us > 0 else 0.0

    # -- export ------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "wall_seconds": self.wall_seconds,
            "sim_cycles": self.cycles_run,
            "sim_microseconds": self.sim_microseconds,
            "events_scheduled": self.events_scheduled,
            "events_fired": self.events_fired,
            "max_heap_depth": self.max_heap_depth,
            "events_per_second": self.events_per_second,
            "cycles_per_second": self.cycles_per_second,
            "wall_us_per_sim_us": self.wall_us_per_sim_us,
        }

    def render(self) -> str:
        return (
            "kernel profile:\n"
            f"  wall time          {self.wall_seconds:12.3f} s\n"
            f"  sim time           {self.sim_microseconds:12.1f} us "
            f"({self.cycles_run} cycles)\n"
            f"  events scheduled   {self.events_scheduled:12d}\n"
            f"  events fired       {self.events_fired:12d} "
            f"({self.events_per_second:,.0f}/s)\n"
            f"  max heap depth     {self.max_heap_depth:12d}\n"
            f"  cycle rate         {self.cycles_per_second:12,.0f} cycles/s\n"
            f"  slowdown           {self.wall_us_per_sim_us:12,.0f} "
            f"wall-us per sim-us"
        )

    def __repr__(self) -> str:
        return (
            f"<KernelProfiler cycles={self.cycles_run} "
            f"events={self.events_fired} wall={self.wall_seconds:.3f}s>"
        )
