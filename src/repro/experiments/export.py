"""Machine-readable export of sweeps and figures (CSV and JSON).

Every regenerated figure can be dumped for downstream plotting::

    fig = fig18(SCALED)
    write_figure_csv(fig, "fig18.csv")
    write_figure_json(fig, "fig18.json")

The CSV is long-form (one row per series x load point) so it loads
directly into pandas/R; the JSON mirrors the dataclasses.
"""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path
from typing import Union

from repro.experiments.figures import FigureResult
from repro.experiments.runner import SweepResult
from repro.metrics.summary import MEASUREMENT_COLUMNS, measurement_row

#: Column order of the long-form CSV: the two identity columns plus the
#: shared Measurement registry (extend the registry, not this list; see
#: :data:`repro.metrics.summary.MEASUREMENT_COLUMNS`).
CSV_FIELDS = ["series", "offered_load"] + [
    c.name for c in MEASUREMENT_COLUMNS
]


def sweep_rows(sweep: SweepResult) -> list[dict]:
    """Long-form dict rows of one sweep."""
    rows = []
    for p in sweep.points:
        m = p.measurement
        if m is None:  # crashed point from a partial parallel run
            continue
        row = {"series": sweep.label, "offered_load": p.offered_load}
        row.update(measurement_row(m))
        rows.append(row)
    return rows


def write_rows_csv(
    rows, fields: list[str], path: Union[str, Path]
) -> Path:
    """Write dict rows under a fixed header; returns the path.

    The shared CSV back end of the figure exporter and the sweep
    service's manifest exporter (:mod:`repro.serve.export`).
    """
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fields)
        writer.writeheader()
        writer.writerows(rows)
    return path


def write_figure_csv(fig: FigureResult, path: Union[str, Path]) -> Path:
    """Write every series of a figure as long-form CSV; returns the path."""
    return write_rows_csv(
        [row for sweep in fig.series for row in sweep_rows(sweep)],
        CSV_FIELDS,
        path,
    )


def _jsonable(value):
    if isinstance(value, float) and (math.isnan(value) or math.isinf(value)):
        return None
    return value


def write_figure_json(fig: FigureResult, path: Union[str, Path]) -> Path:
    """Write a figure (metadata + all points) as JSON; returns the path."""
    path = Path(path)
    payload = {
        "figure_id": fig.figure_id,
        "title": fig.title,
        "expectation": fig.expectation,
        "series": [
            {
                "label": sweep.label,
                "points": [
                    {k: _jsonable(v) for k, v in row.items()}
                    for row in sweep_rows(sweep)
                ],
            }
            for sweep in fig.series
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def read_figure_csv(path: Union[str, Path]) -> list[dict]:
    """Read a long-form CSV back into typed dict rows (round-trip aid).

    Type conversions come from the column registry, so columns added
    there round-trip automatically.  Columns present in an older CSV
    but unknown to the registry stay strings.
    """
    rows = []
    with Path(path).open() as fh:
        for raw in csv.DictReader(fh):
            row: dict = dict(raw)
            row["offered_load"] = float(row["offered_load"])
            for col in MEASUREMENT_COLUMNS:
                if col.name in row:
                    row[col.name] = col.convert(row[col.name])
            rows.append(row)
    return rows
