"""Post-saturation stability sweep: what happens *past* the knee.

The paper stops at the saturation knee (its §5 sustainability
criterion); this sweep deliberately drives each network **through** it
and reports what the fabric settles into, using the full overload
toolkit of :mod:`repro.stability`:

* each point runs with **bounded admission**
  (:class:`~repro.stability.BoundedQueue`), an **AIMD governor**
  (:class:`~repro.stability.AIMDGovernor`) closing the injection loop,
  a **progress watchdog** (:class:`~repro.stability.ProgressWatchdog`)
  recovering stalled worms through
  :class:`~repro.faults.recovery.SourceRetry`, so overload never means
  unbounded queue memory or a wedged run;
* the measurement window is cut into fixed-cycle **batches**; the
  per-batch delivered-throughput series is MSER-truncated and
  classified *stable / metastable / collapsed*
  (:mod:`repro.stability.steady`) against the knee throughput the
  saturation search measured;
* offered loads are expressed as **multiples of the knee load** found
  by :func:`~repro.experiments.saturation.find_saturation`, so "1.2x
  saturation" means the same thing on every network.

Run it::

    python -m repro.experiments --stability --mode smoke
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments.config import NetworkConfig, RunConfig
from repro.experiments.report import ShapeCheck
from repro.experiments.runner import _check_point_deadline, build_point
from repro.experiments.saturation import SaturationPoint, find_saturation
from repro.faults.recovery import RetryPolicy, SourceRetry
from repro.metrics.collector import Measurement, MeasurementWindow
from repro.traffic.workload import Workload
from repro.stability import (
    AIMDConfig,
    AIMDGovernor,
    BoundedQueue,
    ProgressWatchdog,
    SteadyState,
    analyze_series,
    classify,
)

#: Knee multiples the stability figure sweeps: below, at, and past
#: saturation (the acceptance floor is 1.2x; 1.5x probes deeper).
LOAD_FACTORS = (0.8, 1.0, 1.2, 1.5)

#: Per-window batch count for the steady-state series.  32 batches keep
#: MSER meaningful (>= 4 samples even after half-series truncation)
#: without shrinking batches below the transient time scale.
DEFAULT_BATCHES = 32


@dataclass(frozen=True)
class StabilityPoint:
    """One (network, knee-multiple) sample of the overload sweep."""

    load_factor: float        # offered load as a multiple of the knee load
    offered_load: float       # absolute offered load (flits/node-cycle)
    measurement: Measurement  # window metrics incl. shed/throttle/stall
    steady: SteadyState       # MSER-truncated throughput series summary
    stability: str            # "stable" | "metastable" | "collapsed"
    mean_rate: float          # governor's fleet-average rate multiplier
    stall_events: int         # watchdog interventions during the window
    sheds: int                # admission drops during the window
    throttles: int            # admission refusals during the window


@dataclass(frozen=True)
class StabilityResult:
    """One network's overload profile: the knee plus the points past it."""

    label: str
    knee: SaturationPoint
    points: tuple[StabilityPoint, ...]

    def stability_at(self, load_factor: float) -> str:
        for p in self.points:
            if p.load_factor == load_factor:
                return p.stability
        raise KeyError(f"no point at load factor {load_factor}")


def stability_point(
    network: NetworkConfig,
    run_cfg: RunConfig,
    offered_load: float,
    knee_throughput: Optional[float],
    load_factor: float = float("nan"),
    admission: Optional[BoundedQueue] = None,
    aimd: Optional[AIMDConfig] = None,
    governed: bool = True,
    watchdog: bool = True,
    batches: int = DEFAULT_BATCHES,
    engine: Optional[str] = None,
) -> StabilityPoint:
    """Measure one overloaded point with the full stability toolkit.

    ``knee_throughput`` is the saturation-knee throughput in flits per
    node-cycle (None skips the collapse classification).  The run is
    bounded in *memory* by the admission capacity and in *time* by
    ``run_cfg.max_cycles`` of measurement after at most a quarter of
    that again in warmup -- overload can no longer stretch either.
    """
    if offered_load <= 0:
        raise ValueError("offered_load must be positive")
    if batches < 8:
        raise ValueError("need >= 8 batches for a classifiable series")
    from repro.experiments.workload_spec import WorkloadSpec

    env, sim_engine, root = build_point(network, offered_load, run_cfg, engine)
    n_nodes = sim_engine.network.N

    # Overload toolkit: bounded queues, AIMD loop, watchdog + retry.
    (admission if admission is not None else BoundedQueue()).install(
        sim_engine
    )
    governor = (
        AIMDGovernor(sim_engine, aimd) if governed else None
    )
    retry = None
    if watchdog:
        retry = SourceRetry(
            sim_engine,
            RetryPolicy(max_attempts=4, base_delay=64.0, max_delay=1024.0),
            root.fork(f"retry/{network.label}/{offered_load}"),
        )
        sim_engine.watchdog = ProgressWatchdog(
            sim_engine,
            check_every=64,
            stall_age=2048,
            deadlock_after=512,
            recover=True,
        )

    spec = WorkloadSpec(k=network.k, n=network.n)
    workload: Workload = spec.builder(run_cfg)(offered_load)
    workload.governor = governor
    installed = workload.install(
        env,
        sim_engine,
        root.fork(f"workload/{network.label}/{offered_load}"),
    )
    if installed == 0:
        raise RuntimeError("workload installed no traffic sources")
    sim_engine.start()

    # Warmup: packet-count target under a hard cycle bound, like the
    # plain runner -- but past the knee the cycle bound is the binding
    # one, which is exactly the point (bounded time).
    warmup_deadline = env.now + run_cfg.max_cycles / 4
    while (
        sim_engine.stats.delivered_packets < run_cfg.warmup_packets
        and env.now < warmup_deadline
    ):
        _check_point_deadline()
        env.run(until=min(env.now + 512, warmup_deadline))

    window = MeasurementWindow(sim_engine)
    window.begin()
    batch_cycles = max(1.0, run_cfg.max_cycles / batches)
    series: list[float] = []
    prev_flits = sim_engine.stats.delivered_flits
    for _ in range(batches):
        _check_point_deadline()
        env.run(until=env.now + batch_cycles)
        flits = sim_engine.stats.delivered_flits
        series.append((flits - prev_flits) / (n_nodes * batch_cycles))
        prev_flits = flits
    measurement = window.finish()

    steady = analyze_series(series)
    label = classify(steady, knee_throughput)
    assert retry is None or retry.engine is sim_engine  # keeps the sub alive
    return StabilityPoint(
        load_factor=load_factor,
        offered_load=offered_load,
        measurement=measurement,
        steady=steady,
        stability=label,
        mean_rate=governor.mean_rate() if governor is not None else 1.0,
        stall_events=measurement.stall_aborted_packets,
        sheds=measurement.shed_packets,
        throttles=measurement.throttled_packets,
    )


def stability_sweep(
    network: NetworkConfig,
    run_cfg: RunConfig,
    load_factors: Sequence[float] = LOAD_FACTORS,
    admission: Optional[BoundedQueue] = None,
    aimd: Optional[AIMDConfig] = None,
    governed: bool = True,
    watchdog: bool = True,
    batches: int = DEFAULT_BATCHES,
    engine: Optional[str] = None,
) -> StabilityResult:
    """One network's overload profile over the knee-multiple ladder.

    The knee is located first (:func:`find_saturation`); each ladder
    entry then offers ``factor * knee.load``.  A knee search that ended
    ``lo_saturated`` / ``hi_sustainable`` still yields usable absolute
    loads (the boundary probe's load), just with the caveat the status
    records.
    """
    from repro.experiments.workload_spec import WorkloadSpec

    spec = WorkloadSpec(k=network.k, n=network.n)
    knee = find_saturation(network, spec.builder(run_cfg), run_cfg)
    knee_thr = knee.throughput_percent / 100.0
    points = tuple(
        stability_point(
            network,
            run_cfg,
            offered_load=factor * knee.load,
            knee_throughput=knee_thr,
            load_factor=factor,
            admission=admission,
            aimd=aimd,
            governed=governed,
            watchdog=watchdog,
            batches=batches,
            engine=engine,
        )
        for factor in load_factors
    )
    return StabilityResult(network.label, knee, points)


def stability_comparison(
    run_cfg: RunConfig,
    load_factors: Sequence[float] = LOAD_FACTORS,
    kinds: Sequence[str] = ("tmin", "dmin", "vmin", "bmin"),
    batches: int = DEFAULT_BATCHES,
) -> list[StabilityResult]:
    """The four networks' overload profiles, side by side."""
    return [
        stability_sweep(
            NetworkConfig(kind), run_cfg, load_factors, batches=batches
        )
        for kind in kinds
    ]


def render_stability(results: Sequence[StabilityResult]) -> str:
    """Aligned text tables, one block per network."""
    lines = ["=== stability: steady state past the saturation knee ==="]
    for r in results:
        lines.append("")
        lines.append(f"## {r.label} -- {r.knee}")
        lines.append(
            f"{'xknee':>6} | {'load':>6} | {'thr %':>7} | {'class':>10} "
            f"| {'cv':>6} | {'drift':>6} | {'rate':>5} | {'shed':>5} "
            f"| {'thrtl':>5} | {'stall':>5} | {'maxq':>5}"
        )
        lines.append("-" * 92)
        for p in r.points:
            m = p.measurement
            cv = "-" if math.isnan(p.steady.cv) else f"{p.steady.cv:6.3f}"
            drift = (
                "-" if math.isnan(p.steady.drift)
                else f"{p.steady.drift:+6.2f}"
            )
            lines.append(
                f"{p.load_factor:6.2f} | {p.offered_load:6.3f} | "
                f"{m.throughput_percent:7.2f} | {p.stability:>10} | "
                f"{cv:>6} | {drift:>6} | {p.mean_rate:5.2f} | "
                f"{p.sheds:5d} | {p.throttles:5d} | {p.stall_events:5d} | "
                f"{m.max_queue_len:5d}"
            )
    return "\n".join(lines)


def stability_checks(
    results: Sequence[StabilityResult],
    capacity: int = 128,
) -> list[ShapeCheck]:
    """Qualitative claims the overload toolkit must deliver."""
    checks: list[ShapeCheck] = []

    def check(claim: str, passed: bool, detail: str) -> None:
        checks.append(ShapeCheck(claim, passed, detail))

    for r in results:
        name = r.label
        # Bounded memory: admission keeps every source queue at or
        # under capacity even at the deepest overload point.
        worst_q = max(p.measurement.max_queue_len for p in r.points)
        check(
            f"{name}: queue memory bounded by admission",
            worst_q <= capacity,
            f"max queue {worst_q} vs capacity {capacity}",
        )
        # Every point classified -- the run settled into *something*
        # measurable rather than wedging or diverging.
        unclassified = [
            p.load_factor
            for p in r.points
            if p.stability not in ("stable", "metastable", "collapsed")
        ]
        check(
            f"{name}: every overload point classified",
            not unclassified,
            f"unclassified factors: {unclassified or 'none'}",
        )
        # Overload must not collapse delivered throughput: with bounded
        # admission + AIMD the fabric holds (or oscillates around) its
        # knee throughput instead of tree-saturating to a trickle.
        overload = [p for p in r.points if p.load_factor > 1.0]
        collapsed = [p.load_factor for p in overload if p.stability == "collapsed"]
        check(
            f"{name}: no post-knee throughput collapse",
            not collapsed,
            f"collapsed factors: {collapsed or 'none'}",
        )
    return checks
