"""Run simulation points and offered-load sweeps.

One *point* = one (network, workload, offered load) simulation:
warm up until ``warmup_packets`` deliveries, open a measurement window,
run until ``measure_packets`` more deliveries (or the cycle budget runs
out -- which near saturation it will; the window is still valid, the
throughput simply reflects what the network sustained).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.experiments.config import NetworkConfig, RunConfig
from repro.metrics.collector import Measurement, MeasurementWindow
from repro.sim.core import Environment
from repro.sim.rng import RandomStream
from repro.traffic.workload import Workload
from repro.wormhole.engine import WormholeEngine, resolve_engine

#: A workload builder maps an offered load to a ready-to-install Workload.
WorkloadBuilder = Callable[[float], Workload]


def build_point(
    network: NetworkConfig,
    offered_load: float,
    run_cfg: RunConfig,
    engine: Optional[str] = None,
) -> tuple[Environment, WormholeEngine, RandomStream]:
    """Construct the (env, engine, root RNG) triple of one point.

    ``engine`` selects the execution path -- ``"fast"`` pairs the
    calendar scheduler with the optimized engine phases, ``"batch"``
    adds the numpy SoA kernel on top (needs the ``repro[fast]``
    extra), ``"reference"`` the plain heap with the reference phases,
    and None defers to ``REPRO_ENGINE`` (default fast).  The choice
    never changes results (``tests/differential``), only wall-clock
    cost.
    """
    kind = resolve_engine(engine)
    env = Environment(scheduler="heap" if kind == "reference" else "calendar")
    root = RandomStream(run_cfg.seed, name="root")
    sim_engine = WormholeEngine(
        env,
        network.build(),
        rng=root.fork(f"engine/{network.label}/{offered_load}"),
        fast=kind != "reference",
        batch=kind == "batch",
    )
    return env, sim_engine, root

#: env.run() chunk size between progress checks.
_CHUNK = 512


class PointTimeout(TimeoutError):
    """A point exceeded its wall-clock deadline (cooperative check)."""


#: Per-thread wall-clock deadline for the *current* point, as a
#: ``time.monotonic()`` instant.  Thread-local so worker threads (e.g.
#: the parallel runner's in-thread retries, or tests) time out
#: independently; SIGALRM cannot do that (main thread only).
_point_deadline = threading.local()


def set_point_deadline(seconds: Optional[float]) -> None:
    """Arm (or with None, disarm) a wall-clock limit for this thread.

    The limit is checked cooperatively inside the simulation loop
    (:func:`_run_until_delivered`), every ``_CHUNK`` sim-cycles; a point
    past it raises :class:`PointTimeout`.  Wall clock is the right
    clock here: the limit guards the *experiment harness* against hung
    infrastructure, it is not part of the simulated model.
    """
    if seconds is None:
        _point_deadline.at = None
        return
    if seconds <= 0:
        raise ValueError("deadline seconds must be positive")
    _point_deadline.at = time.monotonic() + seconds  # lint-sim: ignore[RPV002]


#: Per-thread liveness callback beaten from the simulation loop at the
#: same cadence as the deadline check (every ``_CHUNK`` sim-cycles), so
#: a supervisor can distinguish "long point, still advancing" from
#: "worker wedged" (see :class:`repro.obs.progress.HeartbeatSlot` and
#: :mod:`repro.serve.supervisor`).
_point_heartbeat = threading.local()


def set_point_heartbeat(beat: Optional[Callable[[], None]]) -> None:
    """Install (or with None, remove) this thread's liveness beat."""
    _point_heartbeat.fn = beat


def _check_point_deadline() -> None:
    beat = getattr(_point_heartbeat, "fn", None)
    if beat is not None:
        beat()
    at = getattr(_point_deadline, "at", None)
    if at is not None and time.monotonic() > at:  # lint-sim: ignore[RPV002]
        _point_deadline.at = None  # disarm: one timeout per arming
        raise PointTimeout("point exceeded its wall-clock deadline")


@dataclass(frozen=True)
class LoadPoint:
    """One sweep point: requested load plus the measured window.

    A point that crashed in a fault-tolerant parallel run carries
    ``measurement=None`` and the worker's error string instead (see
    :func:`repro.experiments.parallel.parallel_sweep`).
    """

    offered_load: float
    measurement: Optional[Measurement]
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when the point actually measured (no worker error)."""
        return self.measurement is not None


@dataclass(frozen=True)
class SweepResult:
    """A full offered-load sweep for one (network, workload) series.

    ``dispatch`` reports how the parallel runner served the sweep
    (requested vs unique points, dedupe and checkpoint-resume counts;
    see :class:`repro.experiments.parallel.DispatchStats`).  It is
    None for sequential sweeps and excluded from equality so a
    deduplicated parallel sweep still compares equal to its sequential
    twin.
    """

    label: str
    points: tuple[LoadPoint, ...]
    dispatch: Optional[object] = field(default=None, compare=False, repr=False)

    @property
    def complete(self) -> bool:
        """True when every point measured (no crashed workers)."""
        return all(p.ok for p in self.points)

    def errors(self) -> list[tuple[float, str]]:
        """(load, error) of every crashed point."""
        return [(p.offered_load, p.error) for p in self.points if not p.ok]

    def max_sustained_throughput(self) -> float:
        """Highest throughput % over the *sustainable* points.

        Falls back to the overall maximum when every point saturated
        (the series' sustainable region lies below the lightest load).
        Crashed points are skipped.
        """
        measured = [p.measurement for p in self.points if p.ok]
        if not measured:
            raise ValueError(f"series {self.label!r} has no measured points")
        sustained = [
            m.throughput_percent for m in measured if m.sustainable
        ]
        if sustained:
            return max(sustained)
        return max(m.throughput_percent for m in measured)

    def latency_at(self, load: float) -> float:
        """Average latency measured at an exact sweep load."""
        for p in self.points:
            if p.offered_load == load:
                if not p.ok:
                    raise ValueError(
                        f"point at load {load} crashed: {p.error}"
                    )
                return p.measurement.avg_latency
        raise KeyError(f"no point at load {load}")


def _run_until_delivered(
    engine: WormholeEngine, target: int, deadline: float
) -> None:
    env = engine.env
    while engine.stats.delivered_packets < target and env.now < deadline:
        _check_point_deadline()
        env.run(until=min(env.now + _CHUNK, deadline))


def run_point(
    network: NetworkConfig,
    workload_builder: WorkloadBuilder,
    offered_load: float,
    run_cfg: RunConfig,
    engine: Optional[str] = None,
) -> Measurement:
    """Simulate one point and return its measurement window.

    ``engine`` ("fast" / "reference" / None = ``REPRO_ENGINE``) picks
    the execution path; results are identical either way.
    """
    env, sim_engine, root = build_point(network, offered_load, run_cfg, engine)
    workload: Workload = workload_builder(offered_load)
    installed = workload.install(
        env, sim_engine, root.fork(f"workload/{network.label}/{offered_load}")
    )
    if installed == 0:
        raise RuntimeError("workload installed no traffic sources")
    sim_engine.start()

    warmup_deadline = env.now + run_cfg.max_cycles / 4
    _run_until_delivered(sim_engine, run_cfg.warmup_packets, warmup_deadline)

    window = MeasurementWindow(sim_engine)
    window.begin()
    deadline = env.now + run_cfg.max_cycles
    _run_until_delivered(sim_engine, run_cfg.measure_packets, deadline)
    return window.finish()


def sweep(
    network: NetworkConfig,
    workload_builder: WorkloadBuilder,
    run_cfg: RunConfig,
    loads: Sequence[float] | None = None,
    label: str | None = None,
    engine: Optional[str] = None,
) -> SweepResult:
    """Sweep the offered load for one (network, workload) series."""
    loads = tuple(loads) if loads is not None else run_cfg.loads
    points = tuple(
        LoadPoint(
            load, run_point(network, workload_builder, load, run_cfg, engine)
        )
        for load in loads
    )
    return SweepResult(label or network.label, points)
