"""Run simulation points and offered-load sweeps.

One *point* = one (network, workload, offered load) simulation:
warm up until ``warmup_packets`` deliveries, open a measurement window,
run until ``measure_packets`` more deliveries (or the cycle budget runs
out -- which near saturation it will; the window is still valid, the
throughput simply reflects what the network sustained).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.experiments.config import NetworkConfig, RunConfig
from repro.metrics.collector import Measurement, MeasurementWindow
from repro.sim.core import Environment
from repro.sim.rng import RandomStream
from repro.traffic.workload import Workload
from repro.wormhole.engine import WormholeEngine

#: A workload builder maps an offered load to a ready-to-install Workload.
WorkloadBuilder = Callable[[float], Workload]

#: env.run() chunk size between progress checks.
_CHUNK = 512


@dataclass(frozen=True)
class LoadPoint:
    """One sweep point: requested load plus the measured window."""

    offered_load: float
    measurement: Measurement


@dataclass(frozen=True)
class SweepResult:
    """A full offered-load sweep for one (network, workload) series."""

    label: str
    points: tuple[LoadPoint, ...]

    def max_sustained_throughput(self) -> float:
        """Highest throughput % over the *sustainable* points.

        Falls back to the overall maximum when every point saturated
        (the series' sustainable region lies below the lightest load).
        """
        sustained = [
            p.measurement.throughput_percent
            for p in self.points
            if p.measurement.sustainable
        ]
        if sustained:
            return max(sustained)
        return max(p.measurement.throughput_percent for p in self.points)

    def latency_at(self, load: float) -> float:
        """Average latency measured at an exact sweep load."""
        for p in self.points:
            if p.offered_load == load:
                return p.measurement.avg_latency
        raise KeyError(f"no point at load {load}")


def _run_until_delivered(
    engine: WormholeEngine, target: int, deadline: float
) -> None:
    env = engine.env
    while engine.stats.delivered_packets < target and env.now < deadline:
        env.run(until=min(env.now + _CHUNK, deadline))


def run_point(
    network: NetworkConfig,
    workload_builder: WorkloadBuilder,
    offered_load: float,
    run_cfg: RunConfig,
) -> Measurement:
    """Simulate one point and return its measurement window."""
    env = Environment()
    root = RandomStream(run_cfg.seed, name="root")
    engine = WormholeEngine(
        env,
        network.build(),
        rng=root.fork(f"engine/{network.label}/{offered_load}"),
    )
    workload = workload_builder(offered_load)
    installed = workload.install(
        env, engine, root.fork(f"workload/{network.label}/{offered_load}")
    )
    if installed == 0:
        raise RuntimeError("workload installed no traffic sources")
    engine.start()

    warmup_deadline = env.now + run_cfg.max_cycles / 4
    _run_until_delivered(engine, run_cfg.warmup_packets, warmup_deadline)

    window = MeasurementWindow(engine)
    window.begin()
    deadline = env.now + run_cfg.max_cycles
    _run_until_delivered(engine, run_cfg.measure_packets, deadline)
    return window.finish()


def sweep(
    network: NetworkConfig,
    workload_builder: WorkloadBuilder,
    run_cfg: RunConfig,
    loads: Sequence[float] | None = None,
    label: str | None = None,
) -> SweepResult:
    """Sweep the offered load for one (network, workload) series."""
    loads = tuple(loads) if loads is not None else run_cfg.loads
    points = tuple(
        LoadPoint(load, run_point(network, workload_builder, load, run_cfg))
        for load in loads
    )
    return SweepResult(label or network.label, points)
