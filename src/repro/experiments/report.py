"""Text rendering and shape verification of regenerated figures.

``render_figure`` prints the latency/throughput table the paper's curve
would be drawn from; ``shape_checks`` evaluates the qualitative claims
(who wins, who collapses) so EXPERIMENTS.md can record pass/fail per
figure without eyeballing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.figures import FigureResult
from repro.experiments.runner import SweepResult
from repro.metrics.summary import report_columns


def render_sweep(s: SweepResult) -> str:
    """One series as an aligned text table (the curve's data rows).

    Columns come from the shared registry
    (:data:`repro.metrics.summary.MEASUREMENT_COLUMNS`), so percentile
    fields added there appear here without edits.  Fault-degradation
    columns (fail/retry/drop) appear only when some point in the series
    actually degraded, keeping fault-free tables identical to the
    paper's.  Points that crashed in a parallel run
    (``LoadPoint.error``) render as an ERROR row instead of data.
    """
    degraded = any(
        p.measurement is not None and p.measurement.degraded for p in s.points
    )
    transport = any(
        p.measurement is not None and p.measurement.transport_active
        for p in s.points
    )
    cols = report_columns(degraded, transport)
    lines = [f"## {s.label}"]
    header = f"{'load':>6} | " + " | ".join(
        f"{c.report_header:>{c.report_width}}" for c in cols
    )
    lines.append(header)
    lines.append("-" * len(header))
    for p in s.points:
        if p.measurement is None:
            lines.append(f"{p.offered_load:6.2f} | ERROR: {p.error}")
            continue
        m = p.measurement
        lines.append(
            f"{p.offered_load:6.2f} | "
            + " | ".join(c.cell(m) for c in cols)
        )
    return "\n".join(lines)


def render_figure(fig: FigureResult) -> str:
    """A whole figure: every series' table plus the summary block."""
    header = [
        f"=== {fig.figure_id}: {fig.title} ===",
        f"paper expectation: {fig.expectation}",
        "",
    ]
    body = [render_sweep(s) for s in fig.series]
    summary = ["", "max sustained throughput per series:"]
    for s in fig.series:
        summary.append(f"  {s.label:<35} {s.max_sustained_throughput():6.2f}%")
    return "\n".join(header) + "\n\n".join(body) + "\n".join(summary)


@dataclass(frozen=True)
class ShapeCheck:
    """One qualitative claim from the paper, evaluated on our data."""

    claim: str
    passed: bool
    detail: str

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.claim} -- {self.detail}"


def _thr(fig: FigureResult, label: str) -> float:
    return fig.by_label(label).max_sustained_throughput()


def shape_checks(fig: FigureResult) -> list[ShapeCheck]:
    """Evaluate the paper's qualitative claims for one figure."""
    checks: list[ShapeCheck] = []

    def check(claim: str, passed: bool, detail: str) -> None:
        checks.append(ShapeCheck(claim, passed, detail))

    if fig.figure_id == "fig16":
        cube_g = _thr(fig, "cube TMIN / global")
        butt_g = _thr(fig, "butterfly TMIN / global")
        check(
            "global uniform: cube == butterfly",
            abs(cube_g - butt_g) < max(3.0, 0.12 * cube_g),
            f"cube {cube_g:.1f}% vs butterfly {butt_g:.1f}%",
        )
        bal = _thr(fig, "cube TMIN / cl16 balanced")
        red = _thr(fig, "butterfly TMIN / cl16 reduced")
        shr = _thr(fig, "butterfly TMIN / cl16 shared")
        check(
            "cluster-16: cube balanced beats butterfly clusterings",
            bal > red and bal >= shr - 1.0,
            f"balanced {bal:.1f}%, reduced {red:.1f}%, shared {shr:.1f}%",
        )
        check(
            "cluster-16: channel-reduced is worst",
            red <= shr and red < bal,
            f"reduced {red:.1f}% vs shared {shr:.1f}%",
        )

    elif fig.figure_id == "fig17":
        bal = _thr(fig, "cube balanced / 4:1:1:1")
        red = _thr(fig, "butterfly reduced / 4:1:1:1")
        shr = _thr(fig, "butterfly shared / 4:1:1:1")
        # "Best performance" in the paper's latency-vs-throughput curves
        # means the channel-shared curve runs below the others: compare
        # latency at the common mid loads (deep-saturation raw
        # throughput is a wash between shared and balanced).
        mid_loads = [
            p.offered_load
            for p in fig.by_label("butterfly shared / 4:1:1:1").points
            if 0.3 <= p.offered_load <= 0.85
        ]
        shared_faster = all(
            fig.by_label("butterfly shared / 4:1:1:1").latency_at(ld)
            <= fig.by_label("cube balanced / 4:1:1:1").latency_at(ld) * 1.05
            for ld in mid_loads
        )
        check(
            "4:1:1:1: butterfly channel-shared is best (lowest latency "
            "at common loads)",
            shared_faster and shr > red,
            f"shared thr {shr:.1f}%, balanced {bal:.1f}%, reduced {red:.1f}%",
        )
        check(
            "4:1:1:1: butterfly channel-reduced is worst",
            red < bal and red < shr,
            f"reduced {red:.1f}%",
        )
        bal0 = _thr(fig, "cube balanced / 1:0:0:0")
        shr0 = _thr(fig, "butterfly shared / 1:0:0:0")
        check(
            "1:0:0:0: channel-shared beats channel-balanced",
            shr0 > bal0,
            f"shared {shr0:.1f}% vs balanced {bal0:.1f}%",
        )
        check(
            "1:0:0:0: aggregate throughput capped near 25%",
            bal0 <= 27.0,
            f"balanced max {bal0:.1f}% (16 of 64 nodes generate)",
        )

    elif fig.figure_id == "fig18":
        for tag in ("global", "cl16"):
            t = {k: _thr(fig, f"{k} / {tag}") for k in ("TMIN", "DMIN", "VMIN", "BMIN")}
            check(
                f"{tag}: DMIN best",
                t["DMIN"] == max(t.values()),
                f"{t}",
            )
            check(
                f"{tag}: TMIN worst",
                t["TMIN"] == min(t.values()),
                f"{t}",
            )
            if tag == "global":
                check(
                    "global: VMIN at least matches BMIN",
                    t["VMIN"] >= t["BMIN"] - 2.0,
                    f"VMIN {t['VMIN']:.1f}% vs BMIN {t['BMIN']:.1f}%",
                )
            else:
                # Under base-cube clustering our BMIN gains a genuine
                # fat-tree locality edge (worms span <= 2(t+1) <= 4
                # channels); we only require VMIN and BMIN to stay
                # between TMIN and DMIN, and record the divergence from
                # the paper's "VMIN always slightly better" in
                # EXPERIMENTS.md.
                check(
                    f"{tag}: VMIN and BMIN between TMIN and DMIN",
                    t["TMIN"] <= min(t["VMIN"], t["BMIN"]) + 2.0
                    and max(t["VMIN"], t["BMIN"]) <= t["DMIN"] + 2.0,
                    f"{t}",
                )

    elif fig.figure_id == "fig19":
        # Steady-state throughput converges to the hot-delivery cap for
        # every network, so the networks' merit shows in latency below
        # the knee (and in the cap itself vs. Fig. 18's uniform numbers).
        def lat(label: str, load: float) -> float:
            return fig.by_label(label).latency_at(load)

        for tag, probe, cap in (("hot 5%", 0.15, 33.0), ("hot 10%", 0.10, 22.0)):
            t = {k: _thr(fig, f"{k} / {tag}") for k in ("TMIN", "DMIN", "VMIN", "BMIN")}
            check(
                f"{tag}: all four networks congested (capped well below uniform)",
                max(t.values()) <= cap,
                f"max sustained {max(t.values()):.1f}% <= {cap}%",
            )
            lats = {
                k: lat(f"{k} / {tag}", probe)
                for k in ("TMIN", "DMIN", "BMIN")
            }
            check(
                f"{tag}: DMIN lowest latency below the knee (load {probe})",
                lats["DMIN"] == min(lats.values()),
                f"{ {k: round(v, 1) for k, v in lats.items()} }",
            )
            # The paper: "the performance difference between the TMIN and
            # BMIN is quite small" with TMIN the worst of the four.
            check(
                f"{tag}: TMIN no better than BMIN (small gap, load {probe})",
                lats["TMIN"] >= 0.9 * lats["BMIN"],
                f"{ {k: round(v, 1) for k, v in lats.items()} }",
            )
        for k in ("TMIN", "DMIN", "VMIN", "BMIN"):
            check(
                f"{k}: 10% hot spot hurts more than 5%",
                _thr(fig, f"{k} / hot 10%") < _thr(fig, f"{k} / hot 5%"),
                f"{_thr(fig, f'{k} / hot 5%'):.1f}% -> "
                f"{_thr(fig, f'{k} / hot 10%'):.1f}%",
            )

    elif fig.figure_id == "fig20":
        for tag in ("shuffle", "beta2"):
            t = {k: _thr(fig, f"{k} / {tag}") for k in ("TMIN", "DMIN", "VMIN", "BMIN")}
            check(
                f"{tag}: DMIN and BMIN beat TMIN and VMIN",
                min(t["DMIN"], t["BMIN"]) > max(t["TMIN"], t["VMIN"]),
                f"{t}",
            )
            check(
                f"{tag}: VMIN no better than TMIN",
                t["VMIN"] <= t["TMIN"] + 2.0,
                f"VMIN {t['VMIN']:.1f}% vs TMIN {t['TMIN']:.1f}%",
            )
            # The paper puts the BMIN slightly ahead of the DMIN under
            # heavy permutation load; with our random forward-channel
            # policy they end up neck and neck (DMIN pinned at its
            # static dilation/contention cap, BMIN just below).  Accept
            # "close", record the exact gap (see EXPERIMENTS.md).
            check(
                f"{tag}: BMIN close to DMIN under heavy load",
                t["BMIN"] >= 0.85 * t["DMIN"],
                f"BMIN {t['BMIN']:.1f}% vs DMIN {t['DMIN']:.1f}%",
            )
    else:
        raise ValueError(f"no shape checks defined for {fig.figure_id!r}")

    return checks
