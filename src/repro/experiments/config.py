"""Configuration records for the simulation experiments.

Every experiment in the paper uses the same geometry: 64 nodes, 4x4
switches, three stages of 16 switches (Section 5).  The experiment
presets trade statistical depth for wall-clock time:

* ``SMOKE`` -- a few dozen packets per point; for tests.
* ``SCALED`` -- the default for the benchmark harness: the paper's
  geometry and workloads, but 8-64-flit messages and ~1-2k measured
  packets per point.  Curve *shapes* (who wins, saturation ordering)
  match the paper; absolute latencies scale with message length.
* ``FULL_FIDELITY`` -- the paper's 8-1024-flit messages and long
  windows.  Hours of CPU for a full figure; use for final numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.traffic.workload import MessageSizeModel

#: Direct-topology kinds (node-to-node fabrics; see repro.direct).
DIRECT_KINDS = ("mesh3d", "torus3d")


@dataclass(frozen=True)
class NetworkConfig:
    """Which network to simulate, and its geometry."""

    kind: str                 # "tmin" | "dmin" | "vmin" | "bmin" | direct
    k: int = 4
    n: int = 3
    topology: str = "cube"    # unidirectional kinds only
    dilation: int = 2         # DMIN
    virtual_channels: int = 2  # VMIN
    bmin_virtual_channels: int = 1
    router: str = "dor"       # direct kinds: "dor" | "adaptive"
    vlink_slowdown: int = 1   # direct kinds: vertical-link slowdown

    @property
    def N(self) -> int:
        """Number of processor nodes."""
        return self.k**self.n

    @property
    def label(self) -> str:
        """Display name, e.g. 'DMIN(d=2, cube)' or 'TORUS3D(4^3, adaptive)'."""
        base = self.kind.upper()
        if self.kind in DIRECT_KINDS:
            label = f"{base}({self.k}^{self.n}, {self.router})"
            if self.vlink_slowdown > 1:
                label = f"{label[:-1]}, z/{self.vlink_slowdown})"
            return label
        if self.kind == "bmin":
            return base
        if self.kind == "dmin":
            return f"{base}(d={self.dilation}, {self.topology})"
        if self.kind == "vmin":
            return f"{base}(v={self.virtual_channels}, {self.topology})"
        return f"{base}({self.topology})"

    def build(self):
        """Construct the simulated network this config describes."""
        from repro.wormhole.network import build_network

        return build_network(
            self.kind,
            k=self.k,
            n=self.n,
            topology=self.topology,
            dilation=self.dilation,
            virtual_channels=self.virtual_channels,
            bmin_virtual_channels=self.bmin_virtual_channels,
            router=self.router,
            vlink_slowdown=self.vlink_slowdown,
        )

    def canonical(self) -> dict:
        """Cache-key form of this config (see repro.serve.canonical).

        The direct-only fields are emitted only for the direct kinds,
        so every MIN config keeps the exact canonical form -- and hence
        point key / job_id -- it had before direct topologies existed
        (the same compatibility rule ``JobSpec.to_dict`` applies to the
        stability block).
        """
        out = {
            "kind": self.kind,
            "k": self.k,
            "n": self.n,
            "topology": self.topology,
            "dilation": self.dilation,
            "virtual_channels": self.virtual_channels,
            "bmin_virtual_channels": self.bmin_virtual_channels,
        }
        if self.kind in DIRECT_KINDS:
            out["router"] = self.router
            out["vlink_slowdown"] = self.vlink_slowdown
        return out


@dataclass(frozen=True)
class RunConfig:
    """How long to warm up and measure each simulation point."""

    name: str
    warmup_packets: int
    measure_packets: int
    max_cycles: int
    sizes: MessageSizeModel
    seed: int = 20250707
    loads: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0)

    def with_loads(self, loads: tuple[float, ...]) -> "RunConfig":
        """Copy with a different offered-load ladder."""
        return replace(self, loads=loads)

    def with_seed(self, seed: int) -> "RunConfig":
        """Copy with a different master seed (for replication runs)."""
        return replace(self, seed=seed)


SMOKE = RunConfig(
    name="smoke",
    warmup_packets=30,
    measure_packets=120,
    max_cycles=30_000,
    sizes=MessageSizeModel("uniform", 4, 16),
    loads=(0.2, 0.6),
)

SCALED = RunConfig(
    name="scaled",
    warmup_packets=300,
    measure_packets=1_500,
    max_cycles=120_000,
    sizes=MessageSizeModel.scaled(),  # uniform [8, 64] flits
)

FULL_FIDELITY = RunConfig(
    name="full",
    warmup_packets=500,
    measure_packets=5_000,
    max_cycles=5_000_000,
    sizes=MessageSizeModel.paper(),  # uniform [8, 1024] flits
)

PRESETS = {"smoke": SMOKE, "scaled": SCALED, "full": FULL_FIDELITY}
