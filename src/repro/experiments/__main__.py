"""CLI: regenerate the paper's figures.

    python -m repro.experiments --figure fig18 --mode scaled
    python -m repro.experiments --all --mode smoke
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.config import PRESETS
from repro.experiments.figures import FIGURE_BUILDERS
from repro.experiments.report import render_figure, shape_checks


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a shell exit code (1 on failed checks)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the evaluation figures of Ni, Gui & Moore.",
    )
    parser.add_argument(
        "--figure",
        choices=sorted(FIGURE_BUILDERS),
        help="which figure to regenerate",
    )
    parser.add_argument(
        "--all", action="store_true", help="regenerate every figure"
    )
    parser.add_argument(
        "--mode",
        choices=sorted(PRESETS),
        default="scaled",
        help="fidelity preset (default: scaled)",
    )
    parser.add_argument(
        "--plot", action="store_true", help="draw ASCII latency/throughput curves"
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        help="also write <DIR>/<figure>.csv and .json exports",
    )
    args = parser.parse_args(argv)
    if not args.all and not args.figure:
        parser.error("pick --figure <id> or --all")

    run_cfg = PRESETS[args.mode]
    targets = sorted(FIGURE_BUILDERS) if args.all else [args.figure]
    failures = 0
    for name in targets:
        start = time.perf_counter()
        fig = FIGURE_BUILDERS[name](run_cfg)
        elapsed = time.perf_counter() - start
        print(render_figure(fig))
        if args.plot:
            from repro.experiments.plotting import plot_figure

            print()
            print(plot_figure(fig))
        if args.csv:
            import pathlib

            from repro.experiments.export import (
                write_figure_csv,
                write_figure_json,
            )

            out = pathlib.Path(args.csv)
            out.mkdir(parents=True, exist_ok=True)
            write_figure_csv(fig, out / f"{name}.csv")
            write_figure_json(fig, out / f"{name}.json")
            print(f"\n(exports written to {out}/{name}.csv and .json)")
        print(f"\n({name} regenerated in {elapsed:.1f}s, mode={args.mode})")
        print("\nshape checks:")
        for chk in shape_checks(fig):
            print(f"  {chk}")
            if not chk.passed:
                failures += 1
        print()
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
