"""CLI: regenerate the paper's figures and the availability sweep.

    python -m repro.experiments --figure fig18 --mode scaled
    python -m repro.experiments --all --mode smoke
    python -m repro.experiments --availability --mode smoke
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.config import PRESETS
from repro.experiments.figures import FIGURE_BUILDERS
from repro.experiments.report import render_figure, shape_checks


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a shell exit code (1 on failed checks)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the evaluation figures of Ni, Gui & Moore.",
    )
    parser.add_argument(
        "--figure",
        choices=sorted(FIGURE_BUILDERS),
        help="which figure to regenerate",
    )
    parser.add_argument(
        "--all", action="store_true", help="regenerate every figure"
    )
    parser.add_argument(
        "--availability",
        action="store_true",
        help="run the fault-rate degradation sweep (beyond the paper)",
    )
    parser.add_argument(
        "--fault-rates",
        type=float,
        nargs="+",
        metavar="U",
        help="per-channel unavailability ladder for --availability",
    )
    parser.add_argument(
        "--mode",
        choices=sorted(PRESETS),
        default="scaled",
        help="fidelity preset (default: scaled)",
    )
    parser.add_argument(
        "--plot", action="store_true", help="draw ASCII latency/throughput curves"
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        help="also write <DIR>/<figure>.csv and .json exports",
    )
    args = parser.parse_args(argv)
    if not args.all and not args.figure and not args.availability:
        parser.error("pick --figure <id>, --all or --availability")

    run_cfg = PRESETS[args.mode]
    failures = 0

    if args.availability:
        from repro.experiments.availability import (
            FAULT_RATES,
            availability_checks,
            availability_comparison,
            render_availability,
        )

        start = time.perf_counter()  # lint-sim: ignore[RPV002] -- harness wall time
        rates = tuple(args.fault_rates) if args.fault_rates else FAULT_RATES
        results = availability_comparison(run_cfg, fault_rates=rates)
        elapsed = time.perf_counter() - start  # lint-sim: ignore[RPV002] -- harness wall time
        print(render_availability(results))
        print(f"\n(availability sweep in {elapsed:.1f}s, mode={args.mode})")
        print("\nshape checks:")
        for chk in availability_checks(results):
            print(f"  {chk}")
            if not chk.passed:
                failures += 1
        print()
        if not args.all and not args.figure:
            return 1 if failures else 0

    targets = sorted(FIGURE_BUILDERS) if args.all else [args.figure]
    for name in targets:
        start = time.perf_counter()  # lint-sim: ignore[RPV002] -- harness wall time
        fig = FIGURE_BUILDERS[name](run_cfg)
        elapsed = time.perf_counter() - start  # lint-sim: ignore[RPV002] -- harness wall time
        print(render_figure(fig))
        if args.plot:
            from repro.experiments.plotting import plot_figure

            print()
            print(plot_figure(fig))
        if args.csv:
            import pathlib

            from repro.experiments.export import (
                write_figure_csv,
                write_figure_json,
            )

            out = pathlib.Path(args.csv)
            out.mkdir(parents=True, exist_ok=True)
            write_figure_csv(fig, out / f"{name}.csv")
            write_figure_json(fig, out / f"{name}.json")
            print(f"\n(exports written to {out}/{name}.csv and .json)")
        print(f"\n({name} regenerated in {elapsed:.1f}s, mode={args.mode})")
        print("\nshape checks:")
        for chk in shape_checks(fig):
            print(f"  {chk}")
            if not chk.passed:
                failures += 1
        print()
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
