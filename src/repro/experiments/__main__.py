"""CLI: regenerate the paper's figures and the availability sweep.

    python -m repro.experiments --figure fig18 --mode scaled
    python -m repro.experiments --all --mode smoke
    python -m repro.experiments --availability --mode smoke
    python -m repro.experiments --stability --mode smoke
    python -m repro.experiments --direct --mode smoke
    python -m repro.experiments --transport --mode smoke
    python -m repro.experiments --replay trace.bin --network dmin

One simulation point can also be run with the observability subsystem
attached (:mod:`repro.obs`): ``--obs-report`` prints the contention /
latency / kernel-profile report, ``--trace out.json`` additionally
writes a Perfetto-loadable timeline::

    python -m repro.experiments --trace point.json --obs-report \\
        --network vmin --pattern shuffle --load 0.8 --mode smoke
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.experiments.config import PRESETS, NetworkConfig
from repro.experiments.figures import FIGURE_BUILDERS
from repro.experiments.report import render_figure, shape_checks
from repro.experiments.workload_spec import PATTERNS, WorkloadSpec
from repro.wormhole.engine import ENGINE_KINDS

#: Network kinds the traced-point mode accepts.
NETWORK_KINDS = ("tmin", "dmin", "vmin", "bmin", "mesh3d", "torus3d")


def _run_traced(args: argparse.Namespace, run_cfg) -> int:
    """The --trace/--obs-report/--obs-json single-point mode."""
    import json
    import pathlib

    from repro.experiments.traced import run_traced_point

    network = NetworkConfig(
        args.network,
        router=args.router,
        vlink_slowdown=args.vlink_slowdown,
    )
    spec = WorkloadSpec(pattern=args.pattern, k=network.k, n=network.n)
    start = time.perf_counter()  # lint-sim: ignore[RPV002] -- harness wall time
    measurement, obs = run_traced_point(
        network, spec, args.load, run_cfg, trace=bool(args.trace)
    )
    elapsed = time.perf_counter() - start  # lint-sim: ignore[RPV002] -- harness wall time
    print(
        f"=== traced point: {network.label} / {spec.label} "
        f"@ load {args.load:g} (mode={args.mode}) ==="
    )
    print(
        f"throughput {measurement.throughput_percent:.1f}%  "
        f"latency mean {measurement.avg_latency:.1f} "
        f"p50 {measurement.p50_latency:.1f} "
        f"p95 {measurement.p95_latency:.1f} "
        f"p99 {measurement.p99_latency:.1f} cycles"
    )
    if args.obs_report:
        print()
        print(obs.report())
    if args.trace:
        count = obs.write_trace(args.trace)
        print(f"\n(Perfetto trace: {count} events written to {args.trace})")
    if args.obs_json:
        path = pathlib.Path(args.obs_json)
        path.write_text(json.dumps(obs.to_dict(), indent=2))
        print(f"(observability summary written to {path})")
    print(f"\n(traced point in {elapsed:.1f}s)")
    return 0


def _run_replay(args: argparse.Namespace, run_cfg) -> int:
    """The --replay mode: recorded trace through the reliable transport."""
    from repro.sim.core import Environment
    from repro.sim.rng import RandomStream
    from repro.traffic.trace import TraceWorkload, read_trace
    from repro.transport import ReliableTransport
    from repro.wormhole.engine import WormholeEngine, resolve_engine

    trace = read_trace(args.replay)
    network = NetworkConfig(
        args.network,
        router=args.router,
        vlink_slowdown=args.vlink_slowdown,
    )
    kind = resolve_engine(args.engine)
    env = Environment(scheduler="heap" if kind == "reference" else "calendar")
    root = RandomStream(run_cfg.seed, name="root")
    label = network.label
    engine = WormholeEngine(
        env,
        network.build(),
        rng=root.fork(f"engine/{label}/replay"),
        fast=kind != "reference",
        batch=kind == "batch",
    )
    transport = ReliableTransport(
        engine, rng=root.fork(f"transport/{label}/replay")
    )
    workload = TraceWorkload(trace, transport=transport)
    workload.install(env, engine, root.fork(f"workload/{label}/replay"))
    start = time.perf_counter()  # lint-sim: ignore[RPV002] -- harness wall time
    engine.start()
    # Drive the replay process to exhaustion first -- it lives outside
    # both idle predicates until it hands messages to the transport --
    # then quiesce drains retransmissions, acks and backoff timers.
    total = len(trace.records)
    horizon = (trace.records[-1].t if trace.records else 0.0) + run_cfg.max_cycles
    while workload.replayed < total and env.now < horizon:
        env.run(until=min(env.now + 256, horizon))
    transport.quiesce()
    elapsed = time.perf_counter() - start  # lint-sim: ignore[RPV002] -- harness wall time
    settled = len(transport.outcomes)
    print(
        f"=== replay: {args.replay} -> {label} "
        f"(engine={kind}, mode={args.mode}) ==="
    )
    print(
        f"records {workload.replayed}/{len(trace.records)} replayed, "
        f"{settled} outcomes settled over {env.now:g} cycles"
    )
    print(
        f"delivered {transport.messages_delivered}  "
        f"aborted {transport.messages_aborted}  "
        f"retransmits {engine.stats.retransmitted_packets}  "
        f"rto fires {engine.stats.rto_fires}  "
        f"dup acks {engine.stats.dup_acks}  "
        f"acks lost {transport.acks_lost}"
    )
    ratio = transport.delivered_ratio()
    print(f"delivered ratio {ratio:.4f}" if ratio == ratio else
          "delivered ratio n/a (no messages)")
    print(f"\n(replay in {elapsed:.1f}s)")
    unsettled = workload.replayed - settled
    if unsettled or workload.replayed != len(trace.records):
        print(f"FAIL: {unsettled} message(s) never settled")
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a shell exit code (1 on failed checks)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the evaluation figures of Ni, Gui & Moore.",
    )
    parser.add_argument(
        "--figure",
        choices=sorted(FIGURE_BUILDERS),
        help="which figure to regenerate",
    )
    parser.add_argument(
        "--all", action="store_true", help="regenerate every figure"
    )
    parser.add_argument(
        "--availability",
        action="store_true",
        help="run the fault-rate degradation sweep (beyond the paper)",
    )
    parser.add_argument(
        "--fault-rates",
        type=float,
        nargs="+",
        metavar="U",
        help="per-channel unavailability ladder for --availability",
    )
    parser.add_argument(
        "--stability",
        action="store_true",
        help="run the post-saturation stability sweep (beyond the paper)",
    )
    parser.add_argument(
        "--direct",
        action="store_true",
        help="run the direct-topology sweep: 3D mesh/torus, DOR vs "
        "adaptive routing (beyond the paper)",
    )
    parser.add_argument(
        "--transport",
        action="store_true",
        help="run the loss-storm sweep comparing the AIMD fabric "
        "governor against end-to-end reliable transport (beyond the "
        "paper)",
    )
    parser.add_argument(
        "--replay",
        metavar="TRACE",
        help="replay a recorded trace (tools/trace_gen.py) through "
        "--network with the reliable transport and report outcomes",
    )
    parser.add_argument(
        "--load-factors",
        type=float,
        nargs="+",
        metavar="X",
        help="knee-multiple ladder for --stability/--transport "
        "(default 0.8 1.0 1.2 1.5)",
    )
    parser.add_argument(
        "--mode",
        choices=sorted(PRESETS),
        default="scaled",
        help="fidelity preset (default: scaled)",
    )
    parser.add_argument(
        "--plot", action="store_true", help="draw ASCII latency/throughput curves"
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        help="also write <DIR>/<figure>.csv and .json exports",
    )
    parser.add_argument(
        "--trace",
        metavar="OUT.json",
        help="run one traced point and write a Perfetto timeline",
    )
    parser.add_argument(
        "--obs-report",
        action="store_true",
        help="run one traced point and print the observability report",
    )
    parser.add_argument(
        "--obs-json",
        metavar="OUT.json",
        help="run one traced point and dump its observability summary",
    )
    parser.add_argument(
        "--network",
        choices=NETWORK_KINDS,
        default="dmin",
        help="network for the traced point (default: dmin)",
    )
    parser.add_argument(
        "--router",
        choices=("dor", "adaptive"),
        default="dor",
        help="routing function for the direct kinds (default: dor)",
    )
    parser.add_argument(
        "--vlink-slowdown",
        type=int,
        default=1,
        metavar="S",
        help="cycles per flit on last-dimension links of the direct "
        "kinds (default: 1 = full speed)",
    )
    parser.add_argument(
        "--pattern",
        choices=PATTERNS,
        default="uniform",
        help="traffic pattern for the traced point (default: uniform)",
    )
    parser.add_argument(
        "--load",
        type=float,
        default=0.6,
        help="offered load for the traced point (default: 0.6)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print a throttled heartbeat while figures regenerate",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINE_KINDS,
        default=None,
        help="execution path: the optimized default ('fast') or the "
        "simple reference engine ('reference'); results are identical, "
        "only wall-clock differs",
    )
    args = parser.parse_args(argv)
    if args.engine:
        # Carried via the environment so parallel worker processes and
        # every nested run_point inherit the choice.
        os.environ["REPRO_ENGINE"] = args.engine
    traced_mode = bool(args.trace or args.obs_report or args.obs_json)
    if (
        not args.all
        and not args.figure
        and not args.availability
        and not args.stability
        and not args.direct
        and not args.transport
        and not args.replay
        and not traced_mode
    ):
        parser.error(
            "pick --figure <id>, --all, --availability, --stability, "
            "--direct, --transport, --replay <trace>, or a traced-point "
            "flag (--trace/--obs-report/--obs-json)"
        )

    run_cfg = PRESETS[args.mode]
    failures = 0
    more_work = bool(
        args.all
        or args.figure
        or args.availability
        or args.stability
        or args.direct
        or args.transport
    )

    if traced_mode:
        code = _run_traced(args, run_cfg)
        if not more_work and not args.replay:
            return code
        print()

    if args.replay:
        code = _run_replay(args, run_cfg)
        if not more_work:
            return code
        print()

    if args.availability:
        from repro.experiments.availability import (
            FAULT_RATES,
            availability_checks,
            availability_comparison,
            render_availability,
        )

        start = time.perf_counter()  # lint-sim: ignore[RPV002] -- harness wall time
        rates = tuple(args.fault_rates) if args.fault_rates else FAULT_RATES
        results = availability_comparison(run_cfg, fault_rates=rates)
        elapsed = time.perf_counter() - start  # lint-sim: ignore[RPV002] -- harness wall time
        print(render_availability(results))
        print(f"\n(availability sweep in {elapsed:.1f}s, mode={args.mode})")
        print("\nshape checks:")
        for chk in availability_checks(results):
            print(f"  {chk}")
            if not chk.passed:
                failures += 1
        print()
        if (
            not args.all
            and not args.figure
            and not args.stability
            and not args.direct
            and not args.transport
        ):
            return 1 if failures else 0

    if args.stability:
        from repro.experiments.stability import (
            LOAD_FACTORS,
            render_stability,
            stability_checks,
            stability_comparison,
        )

        start = time.perf_counter()  # lint-sim: ignore[RPV002] -- harness wall time
        factors = (
            tuple(args.load_factors) if args.load_factors else LOAD_FACTORS
        )
        results = stability_comparison(run_cfg, load_factors=factors)
        elapsed = time.perf_counter() - start  # lint-sim: ignore[RPV002] -- harness wall time
        print(render_stability(results))
        print(f"\n(stability sweep in {elapsed:.1f}s, mode={args.mode})")
        print("\nshape checks:")
        for chk in stability_checks(results):
            print(f"  {chk}")
            if not chk.passed:
                failures += 1
        print()
        if (
            not args.all
            and not args.figure
            and not args.direct
            and not args.transport
        ):
            return 1 if failures else 0

    if args.direct:
        from repro.experiments.direct import (
            direct_checks,
            direct_comparison,
            render_direct,
        )

        start = time.perf_counter()  # lint-sim: ignore[RPV002] -- harness wall time
        series = direct_comparison(run_cfg)
        elapsed = time.perf_counter() - start  # lint-sim: ignore[RPV002] -- harness wall time
        print(render_direct(series))
        print(f"\n(direct sweep in {elapsed:.1f}s, mode={args.mode})")
        print("\nshape checks:")
        for chk in direct_checks(series):
            print(f"  {chk}")
            if not chk.passed:
                failures += 1
        print()
        if not args.all and not args.figure and not args.transport:
            return 1 if failures else 0

    if args.transport:
        from repro.experiments.transport import (
            LOAD_FACTORS as TRANSPORT_FACTORS,
        )
        from repro.experiments.transport import (
            render_transport,
            transport_checks,
            transport_comparison,
        )

        start = time.perf_counter()  # lint-sim: ignore[RPV002] -- harness wall time
        factors = (
            tuple(args.load_factors)
            if args.load_factors
            else TRANSPORT_FACTORS
        )
        results = transport_comparison(run_cfg, load_factors=factors)
        elapsed = time.perf_counter() - start  # lint-sim: ignore[RPV002] -- harness wall time
        print(render_transport(results))
        print(f"\n(transport sweep in {elapsed:.1f}s, mode={args.mode})")
        print("\nshape checks:")
        for chk in transport_checks(results):
            print(f"  {chk}")
            if not chk.passed:
                failures += 1
        print()
        if not args.all and not args.figure:
            return 1 if failures else 0

    targets = sorted(FIGURE_BUILDERS) if args.all else [args.figure]
    if args.progress and targets != [None]:
        from repro.obs.progress import ProgressMeter

        meter = ProgressMeter(prefix="figures")
    else:
        meter = None
    for done, name in enumerate(targets):
        if meter is not None:
            meter(done, len(targets), name)
        start = time.perf_counter()  # lint-sim: ignore[RPV002] -- harness wall time
        fig = FIGURE_BUILDERS[name](run_cfg)
        elapsed = time.perf_counter() - start  # lint-sim: ignore[RPV002] -- harness wall time
        print(render_figure(fig))
        if args.plot:
            from repro.experiments.plotting import plot_figure

            print()
            print(plot_figure(fig))
        if args.csv:
            import pathlib

            from repro.experiments.export import (
                write_figure_csv,
                write_figure_json,
            )

            out = pathlib.Path(args.csv)
            out.mkdir(parents=True, exist_ok=True)
            write_figure_csv(fig, out / f"{name}.csv")
            write_figure_json(fig, out / f"{name}.json")
            print(f"\n(exports written to {out}/{name}.csv and .json)")
        print(f"\n({name} regenerated in {elapsed:.1f}s, mode={args.mode})")
        print("\nshape checks:")
        for chk in shape_checks(fig):
            print(f"  {chk}")
            if not chk.passed:
                failures += 1
        print()
    if meter is not None:
        meter(len(targets), len(targets), "done")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
