"""Declarative, picklable workload descriptions.

The figure builders use closures as workload builders, which cannot
cross process boundaries.  A :class:`WorkloadSpec` is a frozen record
naming the same workloads (pattern + clustering + parameters); it
rebuilds the identical closure on demand, so single-process and
multi-process sweeps are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.experiments.config import RunConfig
from repro.experiments.runner import WorkloadBuilder
from repro.traffic.bursty import ARRIVAL_KINDS, ArrivalSpec
from repro.traffic.clusters import ClusterSpec, cluster_16, cluster_32, global_cluster
from repro.traffic.patterns import (
    ButterflyPermutationPattern,
    HotSpotPattern,
    ShufflePattern,
    UniformPattern,
)
from repro.traffic.workload import Workload

#: Valid pattern / clustering names.
PATTERNS = ("uniform", "hotspot", "shuffle", "butterfly")
CLUSTERINGS = ("global", "cluster16", "cluster16-shared", "cluster32")


@dataclass(frozen=True)
class WorkloadSpec:
    """A named workload: everything the figure builders can express."""

    pattern: str = "uniform"
    clustering: str = "global"
    ratios: Optional[tuple[float, ...]] = None
    hot_fraction: float = 0.05
    butterfly_i: int = 2
    k: int = 4
    n: int = 3
    # Arrival-process choice (see repro.traffic.bursty); the defaults
    # are the paper's Poisson source and are *omitted* from the
    # canonical form so every pre-existing cache key stays byte-stable.
    arrival: str = "poisson"
    burst_alpha: float = 2.5
    burst_on_gap: float = 0.25
    burst_p: float = 0.2

    def __post_init__(self) -> None:
        if self.pattern not in PATTERNS:
            raise ValueError(f"unknown pattern {self.pattern!r}")
        if self.clustering not in CLUSTERINGS:
            raise ValueError(f"unknown clustering {self.clustering!r}")
        if self.pattern in ("shuffle", "butterfly") and self.clustering != "global":
            raise ValueError("permutation patterns are global workloads")
        if self.arrival not in ARRIVAL_KINDS:
            raise ValueError(f"unknown arrival kind {self.arrival!r}")
        # Validate the bursty knobs eagerly (same errors as install time).
        self.arrival_spec()

    def arrival_spec(self) -> Optional[ArrivalSpec]:
        """The bursty-arrival choice; None for the Poisson default."""
        if self.arrival == "poisson":
            return None
        return ArrivalSpec(
            kind=self.arrival,
            alpha=self.burst_alpha,
            on_gap=self.burst_on_gap,
            p=self.burst_p,
        )

    def canonical(self) -> dict:
        """Hash-stable field mapping for cache keys.

        Arrival fields at their Poisson defaults are omitted, so every
        workload expressible before bursty arrivals existed hashes to
        exactly the bytes it always did (the NetworkConfig MIN-kind
        omission precedent).
        """
        out: dict = {
            "pattern": self.pattern,
            "clustering": self.clustering,
            "ratios": list(self.ratios) if self.ratios is not None else None,
            "hot_fraction": self.hot_fraction,
            "butterfly_i": self.butterfly_i,
            "k": self.k,
            "n": self.n,
        }
        if self.arrival != "poisson":
            out["arrival"] = self.arrival
            out["burst_alpha"] = self.burst_alpha
            out["burst_on_gap"] = self.burst_on_gap
            out["burst_p"] = self.burst_p
        return out

    def clusters(self) -> ClusterSpec:
        """Materialize the named clustering."""
        if self.clustering == "global":
            nbits = self.n * (self.k.bit_length() - 1)
            return global_cluster(nbits=nbits)
        if self.clustering == "cluster16":
            return cluster_16("cube", self.ratios)
        if self.clustering == "cluster16-shared":
            return cluster_16("shared", self.ratios)
        return cluster_32(self.ratios)

    def builder(self, run_cfg: RunConfig) -> WorkloadBuilder:
        """The closure the runner consumes (rebuilt identically anywhere)."""
        clusters = self.clusters()
        if self.pattern == "uniform":
            factory = UniformPattern
        elif self.pattern == "hotspot":
            hot = self.hot_fraction

            def factory(members):
                return HotSpotPattern(members, hot)

        elif self.pattern == "shuffle":
            k, n = self.k, self.n

            def factory(members):
                return ShufflePattern(k, n)

        else:
            k, n, i = self.k, self.n, self.butterfly_i

            def factory(members):
                return ButterflyPermutationPattern(k, n, i)

        arrival = self.arrival_spec()
        return lambda load: Workload(
            clusters, factory, load, run_cfg.sizes, arrival=arrival
        )

    @property
    def label(self) -> str:
        """Short human-readable name, e.g. 'hotspot 5% cluster16'."""
        bits = [self.pattern]
        if self.pattern == "hotspot":
            bits.append(f"{self.hot_fraction:.0%}")
        if self.pattern == "butterfly":
            bits.append(f"i={self.butterfly_i}")
        if self.clustering != "global":
            bits.append(self.clustering)
        if self.ratios:
            bits.append(":".join(f"{r:g}" for r in self.ratios))
        if self.arrival != "poisson":
            bits.append(self.arrival)
        return " ".join(bits)
