"""Direct-topology sweeps: mesh/torus, DOR vs adaptive, side by side.

The paper evaluates indirect switch-based fabrics; this module runs the
same offered-load protocol over the :mod:`repro.direct` node-to-node
fabrics so the two families can be compared on one table.  The default
panel is the paper's 64-node geometry (``4^3``) in four flavours::

    MESH3D(4^3, dor)      MESH3D(4^3, adaptive)
    TORUS3D(4^3, dor)     TORUS3D(4^3, adaptive)

:func:`direct_comparison` reuses the standard :func:`sweep` runner, so
every point goes through the identical warmup/measure protocol (and the
identical seeds) as the MIN figures.  :func:`direct_checks` asserts the
qualitative shape the topologies guarantee: every point measures, every
load delivers (the escape fallback keeps every header routable, so no
deadlock wedges a run), nothing is dropped without faults, and deep in
the linear regime the torus' wrap links must not make latency *worse*
than the mesh's under the same router.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments.config import NetworkConfig, RunConfig
from repro.experiments.report import ShapeCheck, render_sweep
from repro.experiments.runner import SweepResult, sweep
from repro.experiments.workload_spec import WorkloadSpec

#: The default comparison panel: (kind, router) pairs.
DIRECT_PANEL = (
    ("mesh3d", "dor"),
    ("mesh3d", "adaptive"),
    ("torus3d", "dor"),
    ("torus3d", "adaptive"),
)


@dataclass(frozen=True)
class DirectSeries:
    """One panel entry: the config that produced a sweep, plus the sweep.

    (:class:`SweepResult` carries only a display label; the checks need
    the structured kind/router to pair mesh against torus.)
    """

    config: NetworkConfig
    result: SweepResult


def direct_configs(
    panel: Sequence[tuple[str, str]] = DIRECT_PANEL,
    k: int = 4,
    n: int = 3,
    vlink_slowdown: int = 1,
) -> list[NetworkConfig]:
    """The panel as :class:`NetworkConfig` records (power-of-two radix
    so the workload clustering's bit arithmetic applies unchanged)."""
    return [
        NetworkConfig(kind, k=k, n=n, router=router,
                      vlink_slowdown=vlink_slowdown)
        for kind, router in panel
    ]


def direct_comparison(
    run_cfg: RunConfig,
    loads: Optional[Sequence[float]] = None,
    configs: Optional[Sequence[NetworkConfig]] = None,
    pattern: str = "uniform",
    engine: Optional[str] = None,
) -> list[DirectSeries]:
    """Sweep every panel config over the offered-load ladder."""
    if configs is None:
        configs = direct_configs()
    series = []
    for cfg in configs:
        spec = WorkloadSpec(pattern=pattern, k=cfg.k, n=cfg.n)
        series.append(
            DirectSeries(
                cfg,
                sweep(cfg, spec.builder(run_cfg), run_cfg,
                      loads=loads, engine=engine),
            )
        )
    return series


def render_direct(series: Sequence[DirectSeries]) -> str:
    """Aligned text tables, one block per config."""
    lines = ["=== direct topologies: mesh/torus, DOR vs adaptive ==="]
    for s in series:
        lines.append("")
        lines.append(render_sweep(s.result))
    return "\n".join(lines)


def direct_checks(series: Sequence[DirectSeries]) -> list[ShapeCheck]:
    """Qualitative claims the direct fabrics must deliver."""
    checks: list[ShapeCheck] = []

    def check(claim: str, passed: bool, detail: str) -> None:
        checks.append(ShapeCheck(claim, passed, detail))

    for s in series:
        r = s.result
        # Every point ran to a measurement (no crashed workers).
        errors = [p.offered_load for p in r.points if p.measurement is None]
        check(
            f"{r.label}: every point measured",
            not errors,
            f"errored loads: {errors or 'none'}",
        )
        measured = [p for p in r.points if p.measurement is not None]
        if not measured:
            continue
        # Deadlock freedom in practice: something was delivered at
        # every load (a wedged fabric delivers nothing past warmup).
        stuck = [
            p.offered_load
            for p in measured
            if p.measurement.delivered_packets == 0
        ]
        check(
            f"{r.label}: packets delivered at every load",
            not stuck,
            f"starved loads: {stuck or 'none'}",
        )
        dropped = sum(p.measurement.dropped_packets for p in measured)
        check(
            f"{r.label}: no drops without faults",
            dropped == 0,
            f"{dropped} packets dropped",
        )
    # Cross-config: at the *lowest* common load (deep in the linear
    # regime, where contention noise is smallest) the torus' shorter
    # routes must show -- its mean latency may not exceed the mesh's
    # under the same router by more than 20%.
    by_key = {(s.config.kind, s.config.router): s.result for s in series}
    for router in ("dor", "adaptive"):
        mesh = by_key.get(("mesh3d", router))
        torus = by_key.get(("torus3d", router))
        if mesh is None or torus is None:
            continue
        pairs = [
            (mp, tp)
            for mp, tp in zip(mesh.points, torus.points)
            if mp.measurement is not None and tp.measurement is not None
        ]
        if not pairs:
            continue
        mp, tp = pairs[0]
        m_lat, t_lat = mp.measurement.avg_latency, tp.measurement.avg_latency
        check(
            f"torus3d({router}): wrap links do not hurt latency at "
            f"load {mp.offered_load:g}",
            t_lat <= 1.2 * m_lat,
            f"torus {t_lat:.1f} vs mesh {m_lat:.1f} cycles",
        )
    return checks
