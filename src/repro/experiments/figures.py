"""One builder per evaluation figure (Figs. 16-20 of Section 5).

Every builder takes a :class:`~repro.experiments.config.RunConfig` and
returns a :class:`FigureResult` holding one
:class:`~repro.experiments.runner.SweepResult` per curve in the paper's
figure, plus the textual expectation the paper states for it.  The
benchmark harness regenerates each figure from these builders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.experiments.config import NetworkConfig, RunConfig
from repro.experiments.runner import SweepResult, WorkloadBuilder, sweep
from repro.traffic.clusters import (
    ClusterSpec,
    cluster_16,
    global_cluster,
)
from repro.traffic.patterns import (
    ButterflyPermutationPattern,
    HotSpotPattern,
    ShufflePattern,
    UniformPattern,
)
from repro.traffic.workload import Workload


@dataclass(frozen=True)
class FigureResult:
    """All series of one paper figure, regenerated."""

    figure_id: str
    title: str
    expectation: str
    series: tuple[SweepResult, ...]

    def by_label(self, label: str) -> SweepResult:
        """The series with the given label (KeyError if absent)."""
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(label)

    @property
    def labels(self) -> list[str]:
        """All series labels, in figure order."""
        return [s.label for s in self.series]


# ------------------------------------------------------------ workload makers


def uniform_workload(clusters: ClusterSpec, run_cfg: RunConfig) -> WorkloadBuilder:
    """Uniform traffic inside each cluster (Section 5.1)."""
    return lambda load: Workload(clusters, UniformPattern, load, run_cfg.sizes)


def hotspot_workload(
    clusters: ClusterSpec, hot_fraction: float, run_cfg: RunConfig
) -> WorkloadBuilder:
    """Per-cluster hot-spot traffic (first node of each cluster hot)."""

    def factory(members):
        return HotSpotPattern(members, hot_fraction)

    return lambda load: Workload(clusters, factory, load, run_cfg.sizes)


def shuffle_workload(run_cfg: RunConfig, k: int = 4, n: int = 3) -> WorkloadBuilder:
    """Perfect k-shuffle permutation traffic (Fig. 20a)."""
    return lambda load: Workload(
        global_cluster(),
        lambda members: ShufflePattern(k, n),
        load,
        run_cfg.sizes,
    )


def butterfly_workload(
    run_cfg: RunConfig, i: int = 2, k: int = 4, n: int = 3
) -> WorkloadBuilder:
    """i-th butterfly permutation traffic (Fig. 20b uses i = 2)."""
    return lambda load: Workload(
        global_cluster(),
        lambda members: ButterflyPermutationPattern(k, n, i),
        load,
        run_cfg.sizes,
    )


# ---------------------------------------------------------------- the networks

CUBE_TMIN = NetworkConfig("tmin", topology="cube")
BUTTERFLY_TMIN = NetworkConfig("tmin", topology="butterfly")
CUBE_DMIN = NetworkConfig("dmin", topology="cube")
CUBE_VMIN = NetworkConfig("vmin", topology="cube")
BMIN = NetworkConfig("bmin")

#: Section 5.3 compares the three unidirectional cube MINs and the BMIN.
FOUR_NETWORKS = (CUBE_TMIN, CUBE_DMIN, CUBE_VMIN, BMIN)


# ------------------------------------------------------------------- figures


def fig16(run_cfg: RunConfig) -> FigureResult:
    """Fig. 16: cube vs. butterfly TMIN, global and cluster-16 uniform.

    (a) global uniform: the two topologies coincide;
    (b) cluster-16 uniform: the cube's channel-balanced clustering beats
    both butterfly clusterings, channel-reduced being worst.
    """
    series = [
        sweep(
            CUBE_TMIN,
            uniform_workload(global_cluster(), run_cfg),
            run_cfg,
            label="cube TMIN / global",
        ),
        sweep(
            BUTTERFLY_TMIN,
            uniform_workload(global_cluster(), run_cfg),
            run_cfg,
            label="butterfly TMIN / global",
        ),
        sweep(
            CUBE_TMIN,
            uniform_workload(cluster_16("cube"), run_cfg),
            run_cfg,
            label="cube TMIN / cl16 balanced",
        ),
        sweep(
            BUTTERFLY_TMIN,
            uniform_workload(cluster_16("cube"), run_cfg),
            run_cfg,
            label="butterfly TMIN / cl16 reduced",
        ),
        sweep(
            BUTTERFLY_TMIN,
            uniform_workload(cluster_16("shared"), run_cfg),
            run_cfg,
            label="butterfly TMIN / cl16 shared",
        ),
    ]
    return FigureResult(
        "fig16",
        "Cube vs. butterfly TMIN under global (a) and cluster-16 (b) uniform traffic",
        "(a) identical curves; (b) cube balanced best, butterfly "
        "channel-reduced worst, channel-shared in between",
        tuple(series),
    )


def fig17(run_cfg: RunConfig) -> FigureResult:
    """Fig. 17: uneven cluster traffic (ratios 4:1:1:1 and 1:0:0:0).

    Channel sharing pays off when clusters are unevenly loaded: the
    butterfly channel-shared clustering beats the cube's balanced one.
    """
    r4111 = (4.0, 1.0, 1.0, 1.0)
    r1000 = (1.0, 0.0, 0.0, 0.0)
    series = [
        sweep(
            CUBE_TMIN,
            uniform_workload(cluster_16("cube", r4111), run_cfg),
            run_cfg,
            label="cube balanced / 4:1:1:1",
        ),
        sweep(
            BUTTERFLY_TMIN,
            uniform_workload(cluster_16("cube", r4111), run_cfg),
            run_cfg,
            label="butterfly reduced / 4:1:1:1",
        ),
        sweep(
            BUTTERFLY_TMIN,
            uniform_workload(cluster_16("shared", r4111), run_cfg),
            run_cfg,
            label="butterfly shared / 4:1:1:1",
        ),
        sweep(
            CUBE_TMIN,
            uniform_workload(cluster_16("cube", r1000), run_cfg),
            run_cfg,
            label="cube balanced / 1:0:0:0",
        ),
        sweep(
            BUTTERFLY_TMIN,
            uniform_workload(cluster_16("shared", r1000), run_cfg),
            run_cfg,
            label="butterfly shared / 1:0:0:0",
        ),
    ]
    return FigureResult(
        "fig17",
        "Uneven cluster traffic: channel-shared butterfly vs. channel-balanced cube",
        "butterfly shared best at 4:1:1:1 and 1:0:0:0; butterfly reduced "
        "worst; 1:0:0:0 caps aggregate throughput near 25%",
        tuple(series),
    )


def fig18(run_cfg: RunConfig) -> FigureResult:
    """Fig. 18: the four networks under uniform traffic.

    (a) global, (b) cluster-16.  Expected: DMIN best, TMIN worst, VMIN
    slightly above BMIN.
    """
    series = []
    for clusters, tag in (
        (global_cluster(), "global"),
        (cluster_16("cube"), "cl16"),
    ):
        wb = uniform_workload(clusters, run_cfg)
        for net in FOUR_NETWORKS:
            series.append(
                sweep(net, wb, run_cfg, label=f"{net.kind.upper()} / {tag}")
            )
    return FigureResult(
        "fig18",
        "Four networks under global (a) and cluster-16 (b) uniform traffic",
        "DMIN best, TMIN worst, VMIN slightly better than BMIN",
        tuple(series),
    )


#: Fig. 19 sweeps its own load ladder: with the paper's hot-spot formula
#: (y = N*x) the hot node's delivery channel caps steady-state aggregate
#: throughput near 25% (x=5%) / 15% (x=10%), so the interesting region
#: -- where the networks differ -- sits below those knees.
FIG19_LOADS = (0.05, 0.10, 0.15, 0.20, 0.25, 0.30)


def fig19(run_cfg: RunConfig) -> FigureResult:
    """Fig. 19: global hot spot, 5% (a) and 10% (b) extra traffic.

    All four networks congest; DMIN degrades least (lowest latency below
    the knee); TMIN is worst; 10% is much worse than 5%.
    """
    loads = tuple(ld for ld in FIG19_LOADS if ld <= max(run_cfg.loads))
    series = []
    for x, tag in ((0.05, "5%"), (0.10, "10%")):
        wb = hotspot_workload(global_cluster(), x, run_cfg)
        for net in FOUR_NETWORKS:
            series.append(
                sweep(
                    net,
                    wb,
                    run_cfg,
                    loads=loads,
                    label=f"{net.kind.upper()} / hot {tag}",
                )
            )
    return FigureResult(
        "fig19",
        "Four networks under global hot-spot traffic (5% and 10%)",
        "all reduced vs. Fig. 18a; DMIN best (lowest latency below the "
        "knee); TMIN worst; 10% much worse than 5%",
        tuple(series),
    )


def fig20(run_cfg: RunConfig) -> FigureResult:
    """Fig. 20: permutation traffic -- shuffle (a) and 2nd butterfly (b).

    TMIN and VMIN collapse (static 4-way channel sharing); DMIN and
    BMIN do well, BMIN best under heavy load.
    """
    series = []
    for wb, tag in (
        (shuffle_workload(run_cfg), "shuffle"),
        (butterfly_workload(run_cfg, i=2), "beta2"),
    ):
        for net in FOUR_NETWORKS:
            series.append(
                sweep(net, wb, run_cfg, label=f"{net.kind.upper()} / {tag}")
            )
    return FigureResult(
        "fig20",
        "Four networks under shuffle (a) and 2nd-butterfly (b) permutations",
        "TMIN and VMIN poor (VMIN below TMIN); DMIN and BMIN good; "
        "BMIN best under heavy load",
        tuple(series),
    )


FIGURE_BUILDERS: dict[str, Callable[[RunConfig], FigureResult]] = {
    "fig16": fig16,
    "fig17": fig17,
    "fig18": fig18,
    "fig19": fig19,
    "fig20": fig20,
}
