"""Run one simulation point with the observability subsystem attached.

:func:`run_traced_point` mirrors :func:`repro.experiments.runner.run_point`
exactly -- same seeds, same warmup/measure protocol, bit-identical
:class:`~repro.metrics.collector.Measurement` -- but opens an
:class:`~repro.obs.session.ObsSession` aligned with the measurement
window.  The sinks attach at ``window.begin()``, so the contention
ledgers, latency histograms, and (optionally) the Perfetto trace cover
precisely the cycles the measurement summarizes: the per-channel busy
intervals in the exported trace sum to that channel's reported
utilization by construction.

    measurement, obs = run_traced_point(CUBE_DMIN, spec, 0.8, SMOKE,
                                        trace=True)
    print(obs.report())
    obs.write_trace("point.json")
"""

from __future__ import annotations

from typing import Optional, Union

from repro.experiments.config import NetworkConfig, RunConfig
from repro.experiments.runner import (
    WorkloadBuilder,
    _run_until_delivered,
    build_point,
)
from repro.experiments.workload_spec import WorkloadSpec
from repro.metrics.collector import Measurement, MeasurementWindow
from repro.obs.session import ObsSession


def run_traced_point(
    network: NetworkConfig,
    workload: Union[WorkloadSpec, WorkloadBuilder],
    offered_load: float,
    run_cfg: RunConfig,
    trace: bool = False,
    bucket: float = 256.0,
    engine: Optional[str] = None,
) -> tuple[Measurement, ObsSession]:
    """One measured point plus its (closed) observability session.

    ``workload`` accepts either a picklable
    :class:`~repro.experiments.workload_spec.WorkloadSpec` or a raw
    workload-builder closure.  ``trace=True`` additionally records a
    Perfetto timeline (memory scales with flits moved; keep to
    smoke/scaled configs).  The returned session is finished and
    detached -- query or export it freely.
    """
    builder: WorkloadBuilder
    if isinstance(workload, WorkloadSpec):
        builder = workload.builder(run_cfg)
    else:
        builder = workload

    env, sim_engine, root = build_point(network, offered_load, run_cfg, engine)
    engine = sim_engine
    wl = builder(offered_load)
    installed = wl.install(
        env, engine, root.fork(f"workload/{network.label}/{offered_load}")
    )
    if installed == 0:
        raise RuntimeError("workload installed no traffic sources")
    engine.start()

    warmup_deadline = env.now + run_cfg.max_cycles / 4
    _run_until_delivered(engine, run_cfg.warmup_packets, warmup_deadline)

    window = MeasurementWindow(engine)
    window.begin()
    # Attach at the window boundary so the observation and measurement
    # windows coincide (utilization == busy-interval sums by definition).
    obs = ObsSession(engine, trace=trace, bucket=bucket)
    deadline = env.now + run_cfg.max_cycles
    _run_until_delivered(engine, run_cfg.measure_packets, deadline)
    measurement = window.finish()
    obs.close()
    return measurement, obs
