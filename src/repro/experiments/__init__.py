"""The paper's simulation experiments (Section 5), reproducible end to end.

* :mod:`repro.experiments.config` -- network / run configurations, with
  ``SCALED`` (quick, short messages) and ``FULL_FIDELITY`` (the paper's
  8-1024-flit messages and longer windows) presets;
* :mod:`repro.experiments.runner` -- run one simulation point
  (warmup, measure) or a whole offered-load sweep;
* :mod:`repro.experiments.figures` -- one builder per evaluation figure
  (Fig. 16 through Fig. 20), each returning a
  :class:`~repro.experiments.figures.FigureResult` with all series;
* :mod:`repro.experiments.report` -- aligned text tables and the
  shape-checks recorded in EXPERIMENTS.md;
* :mod:`repro.experiments.availability` -- degradation sweeps
  (throughput / latency / delivery ratio vs. channel fault rate) using
  :mod:`repro.faults`;
* :mod:`repro.experiments.stability` -- post-saturation overload
  sweeps (steady-state classification past the knee) using
  :mod:`repro.stability`;
* :mod:`repro.experiments.parallel` -- crash-tolerant multi-process
  execution with per-point retry, JSON checkpoint/resume, and a
  ``progress`` heartbeat callback;
* :mod:`repro.experiments.traced` -- one measured point with the
  :mod:`repro.obs` observability subsystem attached (contention
  ledgers, latency histograms, optional Perfetto trace).

Command line: ``python -m repro.experiments --figure 18 --mode scaled``
(or ``--availability`` / ``--stability``).
"""

from repro.experiments.config import (
    FULL_FIDELITY,
    SCALED,
    SMOKE,
    NetworkConfig,
    RunConfig,
)
from repro.experiments.figures import (
    FIGURE_BUILDERS,
    FigureResult,
    fig16,
    fig17,
    fig18,
    fig19,
    fig20,
)
from repro.experiments.runner import (
    LoadPoint,
    PointTimeout,
    SweepResult,
    run_point,
    set_point_deadline,
    sweep,
)
from repro.experiments.report import render_figure, shape_checks
from repro.experiments.plotting import ascii_curve_plot, plot_figure
from repro.experiments.export import write_figure_csv, write_figure_json
from repro.experiments.saturation import (
    CONVERGED,
    HI_SUSTAINABLE,
    LO_SATURATED,
    SATURATION_STATUSES,
    SaturationPoint,
    find_saturation,
)
from repro.experiments.stability import (
    LOAD_FACTORS,
    StabilityPoint,
    StabilityResult,
    render_stability,
    stability_checks,
    stability_comparison,
    stability_point,
    stability_sweep,
)
from repro.experiments.workload_spec import WorkloadSpec
from repro.experiments.parallel import (
    DispatchStats,
    ProgressFn,
    SweepCheckpoint,
    parallel_matrix,
    parallel_sweep,
)
from repro.experiments.traced import run_traced_point
from repro.experiments.availability import (
    AvailabilityPoint,
    AvailabilityResult,
    availability_checks,
    availability_comparison,
    availability_point,
    availability_sweep,
    render_availability,
)

__all__ = [
    "AvailabilityPoint",
    "AvailabilityResult",
    "DispatchStats",
    "CONVERGED",
    "HI_SUSTAINABLE",
    "LOAD_FACTORS",
    "LO_SATURATED",
    "PointTimeout",
    "SATURATION_STATUSES",
    "StabilityPoint",
    "StabilityResult",
    "FIGURE_BUILDERS",
    "FULL_FIDELITY",
    "FigureResult",
    "LoadPoint",
    "ProgressFn",
    "SweepCheckpoint",
    "availability_checks",
    "availability_comparison",
    "availability_point",
    "availability_sweep",
    "render_availability",
    "NetworkConfig",
    "RunConfig",
    "SCALED",
    "SMOKE",
    "SaturationPoint",
    "SweepResult",
    "WorkloadSpec",
    "ascii_curve_plot",
    "parallel_matrix",
    "parallel_sweep",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "fig20",
    "find_saturation",
    "plot_figure",
    "render_figure",
    "render_stability",
    "run_point",
    "run_traced_point",
    "set_point_deadline",
    "shape_checks",
    "stability_checks",
    "stability_comparison",
    "stability_point",
    "stability_sweep",
    "sweep",
    "write_figure_csv",
    "write_figure_json",
]
