"""Degradation experiments: throughput & latency vs. channel fault rate.

The paper motivates the DMIN and BMIN over the TMIN by fault tolerance
(Section 2: a unique-path network loses (src, dst) pairs on any single
channel fault).  This module quantifies that argument: sweep the
per-channel *unavailability* (the steady-state downtime fraction of an
MTBF/MTTR churn process, :class:`~repro.faults.mtbf.MTBFChurn`) and
measure, for each of the four networks under uniform traffic with
source-side retry (:class:`~repro.faults.recovery.SourceRetry`):

* sustained throughput and latency of the measurement window;
* failed / retried / dropped counts (via
  :class:`~repro.metrics.collector.Measurement`);
* the *eventual delivery ratio* -- the fraction of unique messages the
  retry layer eventually lands, the availability headline.

Expected shape (and what ``availability_checks`` asserts): the TMIN's
delivery ratio collapses with the fault rate (any fabric fault on a
worm's unique path is fatal until repaired, and every retry re-rolls
the same dice), while the DMIN's and BMIN's multi-path fabric keeps
the ratio near 1 at low fault rates.

Run it::

    python -m repro.experiments --availability --mode smoke
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments.config import NetworkConfig, RunConfig
from repro.experiments.report import ShapeCheck
from repro.experiments.runner import _run_until_delivered
from repro.faults.mtbf import MTBFChurn
from repro.faults.recovery import RetryPolicy, SourceRetry
from repro.metrics.collector import Measurement, MeasurementWindow
from repro.sim.core import Environment
from repro.traffic.workload import Workload
from repro.sim.rng import RandomStream
from repro.wormhole.engine import WormholeEngine

#: Per-channel unavailability ladder the availability figure sweeps.
FAULT_RATES = (0.0, 0.002, 0.005, 0.01, 0.02, 0.05)

#: Offered load the degradation sweep holds fixed: mid-range, below
#: every network's fault-free saturation point, so the degradation seen
#: is the faults' doing, not congestion's.
DEFAULT_LOAD = 0.3

#: Mean repair time in cycles; MTBF is derived per fault rate so that
#: mttr / (mtbf + mttr) equals the requested unavailability.
DEFAULT_MTTR = 1_500.0


@dataclass(frozen=True)
class AvailabilityPoint:
    """One (network, fault-rate) sample of the degradation sweep."""

    fault_rate: float             # per-channel steady-state unavailability
    measurement: Measurement      # window metrics incl. fail/retry/drop
    delivered_ratio: float        # unique messages eventually delivered
    failures_injected: int        # churn fail events over the whole run
    repairs: int                  # churn repair events over the whole run
    recovered: int                # messages delivered on attempt >= 2
    dropped: int                  # messages whose retry budget ran out


@dataclass(frozen=True)
class AvailabilityResult:
    """The degradation curve of one network."""

    label: str
    points: tuple[AvailabilityPoint, ...]

    def delivered_ratio_at(self, fault_rate: float) -> float:
        for p in self.points:
            if p.fault_rate == fault_rate:
                return p.delivered_ratio
        raise KeyError(f"no point at fault rate {fault_rate}")


def availability_point(
    network: NetworkConfig,
    run_cfg: RunConfig,
    fault_rate: float,
    load: float = DEFAULT_LOAD,
    mttr: float = DEFAULT_MTTR,
    policy: Optional[RetryPolicy] = None,
    severity: str = "hard",
) -> AvailabilityPoint:
    """Measure one network at one per-channel unavailability level."""
    if not 0.0 <= fault_rate < 1.0:
        raise ValueError("fault_rate is an unavailability fraction in [0, 1)")
    from repro.experiments.workload_spec import WorkloadSpec

    env = Environment()
    root = RandomStream(run_cfg.seed, name="root")
    engine = WormholeEngine(
        env,
        network.build(),
        rng=root.fork(f"engine/{network.label}/{fault_rate}"),
    )
    retry = SourceRetry(
        engine,
        policy if policy is not None else RetryPolicy(),
        root.fork(f"retry/{network.label}/{fault_rate}"),
    )
    churn = None
    if fault_rate > 0.0:
        mtbf = mttr * (1.0 - fault_rate) / fault_rate
        churn = MTBFChurn(
            env,
            engine.network,
            root.fork(f"faults/{network.label}/{fault_rate}"),
            mtbf=mtbf,
            mttr=mttr,
            engine=engine,
            severity=severity,
        )
    spec = WorkloadSpec(k=network.k, n=network.n)
    workload: Workload = spec.builder(run_cfg)(load)
    installed = workload.install(
        env, engine, root.fork(f"workload/{network.label}/{fault_rate}")
    )
    if installed == 0:
        raise RuntimeError("workload installed no traffic sources")
    engine.start()

    warmup_deadline = env.now + run_cfg.max_cycles / 4
    _run_until_delivered(engine, run_cfg.warmup_packets, warmup_deadline)

    window = MeasurementWindow(engine)
    window.begin()
    deadline = env.now + run_cfg.max_cycles
    _run_until_delivered(engine, run_cfg.measure_packets, deadline)
    measurement = window.finish()

    return AvailabilityPoint(
        fault_rate=fault_rate,
        measurement=measurement,
        delivered_ratio=retry.delivered_ratio(),
        failures_injected=churn.failures if churn is not None else 0,
        repairs=churn.repairs if churn is not None else 0,
        recovered=retry.recovered,
        dropped=retry.dropped,
    )


def availability_sweep(
    network: NetworkConfig,
    run_cfg: RunConfig,
    fault_rates: Sequence[float] = FAULT_RATES,
    load: float = DEFAULT_LOAD,
    mttr: float = DEFAULT_MTTR,
    policy: Optional[RetryPolicy] = None,
) -> AvailabilityResult:
    """One network's degradation curve over the fault-rate ladder."""
    points = tuple(
        availability_point(
            network, run_cfg, rate, load=load, mttr=mttr, policy=policy
        )
        for rate in fault_rates
    )
    return AvailabilityResult(network.label, points)


def availability_comparison(
    run_cfg: RunConfig,
    fault_rates: Sequence[float] = FAULT_RATES,
    load: float = DEFAULT_LOAD,
    kinds: Sequence[str] = ("tmin", "dmin", "vmin", "bmin"),
) -> list[AvailabilityResult]:
    """The four networks' degradation curves (the paper's §2 argument)."""
    return [
        availability_sweep(
            NetworkConfig(kind), run_cfg, fault_rates, load=load
        )
        for kind in kinds
    ]


def render_availability(results: Sequence[AvailabilityResult]) -> str:
    """Aligned text tables, one block per network."""
    lines = ["=== availability: throughput & delivery vs. fault rate ==="]
    for r in results:
        lines.append("")
        lines.append(f"## {r.label}")
        lines.append(
            f"{'u':>6} | {'thr %':>7} | {'avg lat':>9} | {'deliv':>6} "
            f"| {'fail':>5} | {'retry':>5} | {'drop':>5} | {'churn':>5}"
        )
        lines.append("-" * 68)
        for p in r.points:
            m = p.measurement
            lines.append(
                f"{p.fault_rate:6.3f} | {m.throughput_percent:7.2f} | "
                f"{m.avg_latency:9.1f} | {p.delivered_ratio:6.3f} | "
                f"{m.failed_packets:5d} | {m.retried_packets:5d} | "
                f"{m.dropped_packets:5d} | {p.failures_injected:5d}"
            )
    return "\n".join(lines)


def availability_checks(
    results: Sequence[AvailabilityResult],
) -> list[ShapeCheck]:
    """Qualitative claims: multi-path fabrics degrade gracefully."""
    by_label = {r.label.split("(")[0]: r for r in results}
    checks: list[ShapeCheck] = []

    def check(claim: str, passed: bool, detail: str) -> None:
        checks.append(ShapeCheck(claim, passed, detail))

    probe = max(p.fault_rate for p in results[0].points)

    def at(label: str) -> AvailabilityPoint:
        for p in by_label[label].points:
            if p.fault_rate == probe:
                return p
        raise KeyError(probe)

    # Per-worm failure probability is the discriminator: on the TMIN a
    # fabric fault on the unique path is always fatal; DMIN needs both
    # lanes of a slot down.  (Delivery *ratios* converge to 1 whenever
    # faults are transient and retries patient, so compare with >=.)
    tmin, dmin, bmin = at("TMIN"), at("DMIN"), at("BMIN")
    check(
        f"fault tolerance at u={probe}: TMIN kills more worms than DMIN",
        tmin.measurement.failed_packets > dmin.measurement.failed_packets,
        f"TMIN fail={tmin.measurement.failed_packets} "
        f"vs DMIN fail={dmin.measurement.failed_packets}",
    )
    check(
        f"fault tolerance at u={probe}: DMIN delivery ratio >= TMIN's",
        dmin.delivered_ratio >= tmin.delivered_ratio,
        f"DMIN {dmin.delivered_ratio:.3f} vs TMIN {tmin.delivered_ratio:.3f}",
    )
    check(
        f"fault tolerance at u={probe}: BMIN delivery ratio >= TMIN's",
        bmin.delivered_ratio >= tmin.delivered_ratio,
        f"BMIN {bmin.delivered_ratio:.3f} vs TMIN {tmin.delivered_ratio:.3f}",
    )
    for label, r in by_label.items():
        clean = r.points[0]
        check(
            f"{label}: fault-free point is undegraded",
            clean.fault_rate == 0.0
            and clean.measurement.failed_packets == 0
            and clean.dropped == 0,
            f"fail={clean.measurement.failed_packets} drop={clean.dropped}",
        )
    return checks
