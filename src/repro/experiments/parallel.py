"""Multi-process experiment execution.

Simulation points are pure functions of picklable configuration
(:class:`NetworkConfig`, :class:`WorkloadSpec`, :class:`RunConfig`,
offered load), so a sweep -- or a whole figure's worth of sweeps --
parallelizes embarrassingly across a process pool.  Results are
bit-identical to the sequential runner (same seeds, same code path);
only wall-clock changes.

    spec = WorkloadSpec(pattern="uniform")
    result = parallel_sweep(NetworkConfig("dmin"), spec, SCALED)
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Optional, Sequence

from repro.experiments.config import NetworkConfig, RunConfig
from repro.experiments.runner import LoadPoint, SweepResult, run_point
from repro.experiments.workload_spec import WorkloadSpec


def _point_task(
    args: tuple[NetworkConfig, WorkloadSpec, float, RunConfig],
) -> LoadPoint:
    network, spec, load, run_cfg = args
    measurement = run_point(network, spec.builder(run_cfg), load, run_cfg)
    return LoadPoint(load, measurement)


def parallel_sweep(
    network: NetworkConfig,
    spec: WorkloadSpec,
    run_cfg: RunConfig,
    loads: Optional[Sequence[float]] = None,
    label: Optional[str] = None,
    max_workers: Optional[int] = None,
) -> SweepResult:
    """Offered-load sweep with one process per point."""
    loads = tuple(loads) if loads is not None else run_cfg.loads
    tasks = [(network, spec, load, run_cfg) for load in loads]
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        points = tuple(pool.map(_point_task, tasks))
    return SweepResult(label or f"{network.label} / {spec.label}", points)


def parallel_matrix(
    networks: Sequence[NetworkConfig],
    spec: WorkloadSpec,
    run_cfg: RunConfig,
    loads: Optional[Sequence[float]] = None,
    max_workers: Optional[int] = None,
) -> list[SweepResult]:
    """Every (network, load) point of a comparison, one pool, all at once."""
    loads = tuple(loads) if loads is not None else run_cfg.loads
    tasks = [
        (network, spec, load, run_cfg)
        for network in networks
        for load in loads
    ]
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        flat = list(pool.map(_point_task, tasks))
    out = []
    for i, network in enumerate(networks):
        chunk = tuple(flat[i * len(loads) : (i + 1) * len(loads)])
        out.append(
            SweepResult(f"{network.label} / {spec.label}", chunk)
        )
    return out
