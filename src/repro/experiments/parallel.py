"""Crash-tolerant multi-process experiment execution.

Simulation points are pure functions of picklable configuration
(:class:`NetworkConfig`, :class:`WorkloadSpec`, :class:`RunConfig`,
offered load), so a sweep -- or a whole figure's worth of sweeps --
parallelizes embarrassingly across a process pool.  Results are
bit-identical to the sequential runner (same seeds, same code path);
only wall-clock changes.

    spec = WorkloadSpec(pattern="uniform")
    result = parallel_sweep(NetworkConfig("dmin"), spec, SCALED)

Robustness (long sweeps survive their infrastructure):

* **future per task** -- one crashed worker loses one point, never the
  pool's other results;
* **per-point timeout** -- ``timeout=`` seconds of wall clock per
  point, enforced by a cooperative monotonic deadline checked inside
  the simulation loop (works in any thread, on any platform; SIGALRM
  stays armed as a main-thread-only backstop, plus a phase-level
  backstop), so a hung point cannot wedge the whole figure;
* **retry with backoff** -- crashed/timed-out points are re-run
  sequentially in the parent (``retries=`` attempts, exponential
  sleep), where a transient failure (OOM-killed worker, flaky node)
  usually clears;
* **partial results** -- a point that still fails yields a
  :class:`~repro.experiments.runner.LoadPoint` with ``measurement=None``
  and the error string attached, so every completed point is kept;
* **checkpoint/resume** -- ``checkpoint="sweep.json"`` persists each
  finished point as it lands; re-running with the same path skips them
  (a corrupt/truncated checkpoint is quarantined to ``*.corrupt`` and
  the sweep restarts cleanly);
* **dedupe before dispatch** -- identical ``(network, spec, load)``
  entries simulate once and fan out; the fold is reported in
  ``SweepResult.dispatch`` (:class:`DispatchStats`).
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from repro.experiments.config import NetworkConfig, RunConfig
from repro.experiments.runner import (
    LoadPoint,
    SweepResult,
    run_point,
    set_point_deadline,
)
from repro.experiments.workload_spec import WorkloadSpec
from repro.metrics.collector import (
    measurement_from_dict,
    measurement_to_dict,
)

logger = logging.getLogger(__name__)

#: One task: (network, spec, load, run_cfg); its key inside a matrix is
#: (network.label, load).
PointTask = tuple[NetworkConfig, WorkloadSpec, float, RunConfig]

#: A point runner maps one task to its LoadPoint (overridable in tests
#: to inject crashes; must be a picklable module-level callable).
PointRunner = Callable[[PointTask], LoadPoint]

#: Progress callback ``progress(done, total, label)`` invoked in the
#: parent after every settled point (checkpoint hits included).  Use
#: :class:`repro.obs.progress.ProgressMeter` for a throttled stderr
#: heartbeat.
ProgressFn = Callable[[int, int, str], None]


def _point_task(args: PointTask) -> LoadPoint:
    network, spec, load, run_cfg = args
    measurement = run_point(network, spec.builder(run_cfg), load, run_cfg)
    return LoadPoint(load, measurement)


def _alarmed_runner(
    payload: tuple[PointRunner, float, PointTask],
) -> LoadPoint:
    """Run one point under a wall-clock limit (in the worker).

    The primary mechanism is *cooperative*: the worker arms a
    per-thread monotonic deadline
    (:func:`repro.experiments.runner.set_point_deadline`) that the
    simulation loop checks between chunks and converts into an ordinary
    :class:`~repro.experiments.runner.PointTimeout` the parent handles
    like any crash.  Cooperative checks work in any thread on any
    platform and interrupt at a clean chunk boundary.

    SIGALRM remains as a *backstop* -- armed only when available (Unix)
    and only in a main thread (its hard constraint) -- for points hung
    somewhere that never reaches the cooperative check (e.g. a
    pathological pure-Python spin outside the runner loop).  The phase
    deadline in :func:`_run_tasks` is the final backstop for workers
    stuck in uninterruptible code.
    """
    runner, seconds, task = payload
    import signal
    import threading

    use_alarm = hasattr(signal, "SIGALRM") and (
        threading.current_thread() is threading.main_thread()
    )

    def _fire(signum, frame):
        raise TimeoutError(f"point exceeded {seconds}s")

    if use_alarm:
        # Backstop only: give the cooperative deadline first claim.
        old = signal.signal(signal.SIGALRM, _fire)
        signal.setitimer(signal.ITIMER_REAL, seconds * 1.5)
    set_point_deadline(seconds)
    try:
        return runner(task)
    finally:
        set_point_deadline(None)
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, old)


def _task_key(task: PointTask) -> str:
    network, spec, load, _ = task
    return f"{network.label}|{spec.label}|{load!r}"


# ------------------------------------------------------------- checkpointing


@dataclass(frozen=True)
class DispatchStats:
    """How the parallel runner actually served one phase of tasks.

    ``requested`` counts the tasks handed in, ``unique`` the distinct
    ``(network, spec, load)`` keys left after dedupe, ``deduplicated``
    the duplicates folded onto a representative, and ``checkpointed``
    how many of the unique keys were answered from a resume checkpoint
    without any dispatch at all.
    """

    requested: int
    unique: int
    deduplicated: int
    checkpointed: int = 0


class SweepCheckpoint:
    """JSON persistence of finished points, keyed by (network, spec, load).

    The file is rewritten atomically (write-temp-then-rename) after each
    completed point, so an interrupted sweep resumes from the last point
    that finished, never from a torn file.

    Loading is crash-tolerant too: a truncated, corrupt or structurally
    alien checkpoint (e.g. a torn write from a pre-atomic tool, or a
    file from a different schema) is logged, renamed to
    ``<name>.corrupt`` beside the original, and the sweep restarts
    cleanly from zero instead of raising.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._done: dict[str, LoadPoint] = {}
        if self.path.exists():
            try:
                self._load()
            except (json.JSONDecodeError, KeyError, TypeError, ValueError,
                    AttributeError) as exc:
                quarantined = self.path.with_name(self.path.name + ".corrupt")
                serial = 0
                while quarantined.exists():
                    serial += 1
                    quarantined = self.path.with_name(
                        f"{self.path.name}.corrupt.{serial}"
                    )
                os.replace(self.path, quarantined)
                self._done = {}
                logger.warning(
                    "checkpoint %s is corrupt (%s: %s); moved to %s, "
                    "restarting the sweep from scratch",
                    self.path, type(exc).__name__, exc, quarantined,
                )

    def _load(self) -> None:
        payload = json.loads(self.path.read_text())
        for key, entry in payload.get("points", {}).items():
            self._done[key] = LoadPoint(
                entry["offered_load"],
                measurement_from_dict(entry["measurement"]),
            )

    def __len__(self) -> int:
        return len(self._done)

    def get(self, task: PointTask) -> Optional[LoadPoint]:
        """The finished point for this task, if checkpointed."""
        return self._done.get(_task_key(task))

    def record(self, task: PointTask, point: LoadPoint) -> None:
        """Persist one finished point (errored points are not kept:
        a resume should re-attempt them)."""
        if not point.ok:
            return
        self._done[_task_key(task)] = point
        self._flush()

    def _flush(self) -> None:
        payload = {
            "version": 1,
            "points": {
                key: {
                    "offered_load": p.offered_load,
                    "measurement": measurement_to_dict(p.measurement),
                }
                for key, p in self._done.items()
            },
        }
        fd, tmp = tempfile.mkstemp(
            dir=str(self.path.parent), prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh)
            os.replace(tmp, self.path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise


# ---------------------------------------------------------------- execution


def _format_error(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def _run_tasks(
    tasks: Sequence[PointTask],
    max_workers: Optional[int],
    timeout: Optional[float],
    retries: int,
    backoff: float,
    point_runner: PointRunner,
    checkpoint: Optional[SweepCheckpoint],
    progress: Optional[ProgressFn] = None,
) -> tuple[list[LoadPoint], DispatchStats]:
    """Run every task crash-tolerantly; returns points in task order.

    Identical tasks -- same ``(network, spec, load)`` key -- are folded
    onto one representative before dispatch, so a spec that names the
    same point twice simulates it once; every duplicate index receives
    the representative's result.  The fold is reported in the returned
    :class:`DispatchStats`.
    """
    total = len(tasks)

    # Dedupe: first index with a given key computes, the rest fan out.
    rep_of_key: dict[str, int] = {}
    fanout: list[int] = []
    for i, task in enumerate(tasks):
        fanout.append(rep_of_key.setdefault(_task_key(task), i))
    unique_idx = [i for i, rep in enumerate(fanout) if rep == i]
    if len(unique_idx) < total:
        logger.info(
            "deduplicated %d duplicate point(s): %d requested -> %d dispatched",
            total - len(unique_idx), total, len(unique_idx),
        )

    def _tick(i: int) -> None:
        if progress is not None:
            progress(len(results), len(unique_idx), _task_key(tasks[i]))

    results: dict[int, LoadPoint] = {}
    pending_idx: list[int] = []
    checkpointed = 0
    if checkpoint is not None:
        for i in unique_idx:
            done = checkpoint.get(tasks[i])
            if done is not None:
                results[i] = done
                checkpointed += 1
                _tick(i)
            else:
                pending_idx.append(i)
    else:
        pending_idx = list(unique_idx)
    stats = DispatchStats(
        requested=total,
        unique=len(unique_idx),
        deduplicated=total - len(unique_idx),
        checkpointed=checkpointed,
    )

    failed: dict[int, str] = {}
    if pending_idx:
        pool = ProcessPoolExecutor(max_workers=max_workers)
        abandoned = False
        try:
            if timeout is not None:
                # Per-point wall-clock limit, enforced by SIGALRM inside
                # each worker; the phase deadline below is the backstop.
                future_of = {
                    pool.submit(
                        _alarmed_runner, (point_runner, timeout, tasks[i])
                    ): i
                    for i in pending_idx
                }
                workers = max_workers or os.cpu_count() or 1
                waves = -(-len(pending_idx) // workers)  # ceil division
                # Wall-clock backstop for wedged worker processes.
                deadline = time.monotonic() + timeout * waves + 5.0  # lint-sim: ignore[RPV002]
            else:
                future_of = {
                    pool.submit(point_runner, tasks[i]): i
                    for i in pending_idx
                }
                deadline = None
            outstanding = set(future_of)
            while outstanding:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()  # lint-sim: ignore[RPV002]
                )
                if remaining is not None and remaining <= 0:
                    for fut in outstanding:  # stuck past even the backstop
                        fut.cancel()
                        failed[future_of[fut]] = (
                            f"TimeoutError: phase deadline exceeded "
                            f"({timeout}s per point)"
                        )
                    abandoned = True
                    break
                done, outstanding = wait(
                    outstanding, timeout=remaining, return_when=FIRST_COMPLETED
                )
                for fut in done:
                    i = future_of[fut]
                    try:
                        point = fut.result()
                    except Exception as exc:  # worker crash
                        failed[i] = _format_error(exc)
                    else:
                        results[i] = point
                        if checkpoint is not None:
                            checkpoint.record(tasks[i], point)
                        _tick(i)
        finally:
            # A hung worker must not wedge the parent: abandon the pool
            # without joining when we timed out (workers are reaped at
            # interpreter exit); join normally otherwise.
            pool.shutdown(wait=not abandoned, cancel_futures=True)

    # Sequential retry of the casualties, with exponential backoff: a
    # transiently failing point (OOM-killed worker, flaky machine)
    # usually succeeds in the parent.
    for i, first_error in sorted(failed.items()):
        error = first_error
        point: Optional[LoadPoint] = None
        for attempt in range(retries):
            if backoff > 0:
                time.sleep(backoff * (2.0**attempt))
            try:
                point = point_runner(tasks[i])
                break
            except Exception as exc:
                error = _format_error(exc)
        if point is not None:
            results[i] = point
            if checkpoint is not None:
                checkpoint.record(tasks[i], point)
        else:
            results[i] = LoadPoint(tasks[i][2], None, error=error)
        _tick(i)

    # Fan the representatives' results out to their duplicates.
    return [results[fanout[i]] for i in range(len(tasks))], stats


# ------------------------------------------------------------- entry points


def parallel_sweep(
    network: NetworkConfig,
    spec: WorkloadSpec,
    run_cfg: RunConfig,
    loads: Optional[Sequence[float]] = None,
    label: Optional[str] = None,
    max_workers: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    backoff: float = 0.0,
    checkpoint: Union[None, str, Path, SweepCheckpoint] = None,
    point_runner: PointRunner = _point_task,
    progress: Optional[ProgressFn] = None,
) -> SweepResult:
    """Offered-load sweep with one process per point.

    ``timeout`` is a per-point wall-clock limit in seconds (cooperative
    deadline inside the worker's simulation loop, SIGALRM backstop in
    main threads, and a whole-phase backstop for uninterruptible
    hangs);
    ``retries``/``backoff`` re-run crashed points sequentially;
    ``checkpoint`` names a JSON file for resume; ``progress`` is called
    as ``progress(done, total, label)`` after every settled point (see
    :class:`repro.obs.progress.ProgressMeter`).  Crashed points come
    back as ``LoadPoint(load, None, error=...)`` -- check
    ``SweepResult.complete``.
    """
    loads = tuple(loads) if loads is not None else run_cfg.loads
    tasks = [(network, spec, load, run_cfg) for load in loads]
    ckpt = _coerce_checkpoint(checkpoint)
    points, stats = _run_tasks(
        tasks, max_workers, timeout, retries, backoff, point_runner, ckpt,
        progress,
    )
    return SweepResult(
        label or f"{network.label} / {spec.label}", tuple(points),
        dispatch=stats,
    )


def parallel_matrix(
    networks: Sequence[NetworkConfig],
    spec: WorkloadSpec,
    run_cfg: RunConfig,
    loads: Optional[Sequence[float]] = None,
    max_workers: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    backoff: float = 0.0,
    checkpoint: Union[None, str, Path, SweepCheckpoint] = None,
    point_runner: PointRunner = _point_task,
    progress: Optional[ProgressFn] = None,
) -> list[SweepResult]:
    """Every (network, load) point of a comparison, one pool, all at once."""
    loads = tuple(loads) if loads is not None else run_cfg.loads
    tasks = [
        (network, spec, load, run_cfg)
        for network in networks
        for load in loads
    ]
    ckpt = _coerce_checkpoint(checkpoint)
    flat, stats = _run_tasks(
        tasks, max_workers, timeout, retries, backoff, point_runner, ckpt,
        progress,
    )
    out = []
    for i, network in enumerate(networks):
        chunk = tuple(flat[i * len(loads) : (i + 1) * len(loads)])
        out.append(
            SweepResult(
                f"{network.label} / {spec.label}", chunk, dispatch=stats
            )
        )
    return out


def _coerce_checkpoint(
    checkpoint: Union[None, str, Path, SweepCheckpoint],
) -> Optional[SweepCheckpoint]:
    if checkpoint is None or isinstance(checkpoint, SweepCheckpoint):
        return checkpoint
    return SweepCheckpoint(checkpoint)
