"""Text plots of latency-throughput curves.

The paper's figures are latency-vs-throughput curves; this module draws
them as ASCII scatter plots so a terminal-only reproduction run can
still *see* the shapes (saturation knees, who sits below whom).  One
character per series; shared axes across the figure for honest
comparison.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.experiments.figures import FigureResult
from repro.experiments.runner import SweepResult

#: Plot glyphs assigned to series in order.
GLYPHS = "ox+*#@%&"


def _finite(values: Sequence[float]) -> list[float]:
    return [v for v in values if not math.isnan(v) and not math.isinf(v)]


def ascii_curve_plot(
    series: Sequence[SweepResult],
    width: int = 64,
    height: int = 20,
    max_latency: Optional[float] = None,
) -> str:
    """Latency (y) vs. throughput % (x) for up to 8 sweeps.

    ``max_latency`` clips the y axis (deep-saturation latencies grow
    with the simulated window and would squash the interesting region).
    """
    if not series:
        raise ValueError("nothing to plot")
    if len(series) > len(GLYPHS):
        raise ValueError(f"at most {len(GLYPHS)} series per plot")

    points: list[tuple[float, float, str]] = []
    for glyph, sweep in zip(GLYPHS, series):
        for p in sweep.points:
            m = p.measurement
            if math.isnan(m.avg_latency):
                continue
            points.append((m.throughput_percent, m.avg_latency, glyph))
    if not points:
        raise ValueError("no finite points to plot")

    xs = _finite([x for x, _, _ in points])
    ys = _finite([y for _, y, _ in points])
    x_max = max(xs) * 1.05 or 1.0
    y_cap = max_latency if max_latency is not None else max(ys)
    y_cap = max(y_cap, 1.0)

    grid = [[" "] * width for _ in range(height)]
    for x, y, glyph in points:
        col = min(width - 1, int(x / x_max * (width - 1)))
        row = min(height - 1, int(min(y, y_cap) / y_cap * (height - 1)))
        grid[height - 1 - row][col] = glyph

    lines = []
    for i, row in enumerate(grid):
        y_label = y_cap * (height - 1 - i) / (height - 1)
        lines.append(f"{y_label:8.0f} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(
        " " * 9
        + f"0%{'':{width - 12}}{x_max:5.1f}%  (throughput; y = avg latency, cycles)"
    )
    legend = "  ".join(
        f"{glyph}={sweep.label}" for glyph, sweep in zip(GLYPHS, series)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)


def plot_figure(fig: FigureResult, per_plot: int = 4, **kwargs) -> str:
    """Plot a whole figure, ``per_plot`` series per panel."""
    panels = []
    for start in range(0, len(fig.series), per_plot):
        chunk = fig.series[start : start + per_plot]
        panels.append(ascii_curve_plot(chunk, **kwargs))
    header = f"{fig.figure_id}: {fig.title}"
    return header + "\n\n" + "\n\n".join(panels)
