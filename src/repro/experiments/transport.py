"""Loss-storm sweep: fabric governor vs. end-to-end transport.

PR 5's stability sweep asks what the *fabric* does past the knee; this
sweep asks what the *endpoints* get.  Every point runs under a seeded
loss storm -- bounded shed-newest admission plus MTBF channel churn at
a target unavailability -- at knee-multiple offered loads, in one of
three recovery modes:

* ``"governor"`` -- the fabric-level answer: AIMD injection governor
  plus exponential-backoff source retry (PR 1/5 wiring, no transport);
* ``"transport"`` -- the end-to-end answer:
  :class:`repro.transport.ReliableTransport` (acks, retransmit with
  backoff, AIMD windows), raw ungoverned sources;
* ``"both"`` -- governor and transport stacked, the congestion-control
  study ROADMAP item 5 promises.

Each point's per-batch delivered-throughput series is MSER-classified
(stable / metastable / collapsed) exactly like the stability sweep, and
the transport modes additionally report goodput (first-time end-to-end
payload) against raw delivered throughput, retransmission pressure and
flow aborts.

Run it::

    python -m repro.experiments --transport --mode smoke
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments.config import NetworkConfig, RunConfig
from repro.experiments.report import ShapeCheck
from repro.experiments.runner import _check_point_deadline, build_point
from repro.experiments.saturation import SaturationPoint, find_saturation
from repro.experiments.stability import DEFAULT_BATCHES, LOAD_FACTORS
from repro.faults.mtbf import MTBFChurn
from repro.faults.recovery import RetryPolicy, SourceRetry
from repro.metrics.collector import Measurement, MeasurementWindow
from repro.stability import (
    AIMDGovernor,
    BoundedQueue,
    ProgressWatchdog,
    SteadyState,
    analyze_series,
    classify,
)
from repro.stability.admission import SHED_NEWEST
from repro.traffic.workload import Workload
from repro.transport import ReliableTransport, TransportConfig

#: Recovery modes the sweep compares at every (network, knee-multiple).
MODES = ("governor", "transport", "both")

#: The acceptance drill's storm: 10% per-channel unavailability.
DEFAULT_FAULT_RATE = 0.1
DEFAULT_MTTR = 400.0

#: Admission bound during the storm (shed-newest: fresh offers drop).
DEFAULT_CAPACITY = 16


@dataclass(frozen=True)
class TransportPoint:
    """One (network, knee-multiple, mode) sample of the storm sweep."""

    mode: str                 # "governor" | "transport" | "both"
    load_factor: float        # offered load as a multiple of the knee load
    offered_load: float       # absolute offered load (flits/node-cycle)
    measurement: Measurement  # window metrics incl. transport counters
    steady: SteadyState       # MSER-truncated throughput series summary
    stability: str            # "stable" | "metastable" | "collapsed"
    mean_rate: float          # governor fleet-average rate (1.0 ungoverned)
    messages_sent: int        # transport sends over the whole run
    messages_delivered: int   # unique end-to-end deliveries
    messages_aborted: int     # messages in aborted flows
    delivered_ratio: float    # settled-delivered fraction (nan w/o transport)


@dataclass(frozen=True)
class TransportResult:
    """One network's storm profile: the knee plus every (factor, mode)."""

    label: str
    knee: SaturationPoint
    points: tuple[TransportPoint, ...]

    def point_at(self, load_factor: float, mode: str) -> TransportPoint:
        for p in self.points:
            if p.load_factor == load_factor and p.mode == mode:
                return p
        raise KeyError(f"no point at factor {load_factor} mode {mode!r}")


def transport_point(
    network: NetworkConfig,
    run_cfg: RunConfig,
    offered_load: float,
    knee_throughput: Optional[float],
    load_factor: float = float("nan"),
    mode: str = "both",
    capacity: int = DEFAULT_CAPACITY,
    fault_rate: float = DEFAULT_FAULT_RATE,
    mttr: float = DEFAULT_MTTR,
    transport_config: Optional[TransportConfig] = None,
    batches: int = DEFAULT_BATCHES,
    engine: Optional[str] = None,
) -> TransportPoint:
    """Measure one loss-storm point in one recovery mode.

    The storm is identical across modes at a given seed: bounded
    shed-newest admission at ``capacity`` plus hard MTBF churn at
    ``fault_rate`` unavailability -- fault and engine streams are
    forked under the same labels in every mode, so the comparison
    isolates the recovery machinery.
    """
    if offered_load <= 0:
        raise ValueError("offered_load must be positive")
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; valid: {', '.join(MODES)}")
    if not 0.0 <= fault_rate < 1.0:
        raise ValueError("fault_rate is an unavailability fraction in [0, 1)")
    if batches < 8:
        raise ValueError("need >= 8 batches for a classifiable series")
    from repro.experiments.workload_spec import WorkloadSpec

    env, sim_engine, root = build_point(network, offered_load, run_cfg, engine)
    n_nodes = sim_engine.network.N
    label = network.label

    # The storm: bounded shed-newest admission + hard channel churn.
    BoundedQueue(capacity=capacity, mode=SHED_NEWEST).install(sim_engine)
    if fault_rate > 0.0:
        mtbf = mttr * (1.0 - fault_rate) / fault_rate
        MTBFChurn(
            env,
            sim_engine.network,
            root.fork(f"faults/{label}/{offered_load}"),
            mtbf=mtbf,
            mttr=mttr,
            engine=sim_engine,
            severity="hard",
        )
    # The watchdog runs in every mode: "no deadlock/livelock" is part
    # of the claim under test, not an assumption.
    sim_engine.watchdog = ProgressWatchdog(
        sim_engine,
        check_every=64,
        stall_age=2048,
        deadlock_after=512,
        recover=True,
    )

    governor = (
        AIMDGovernor(sim_engine) if mode in ("governor", "both") else None
    )
    transport = None
    retry = None
    if mode in ("transport", "both"):
        transport = ReliableTransport(
            sim_engine,
            transport_config
            if transport_config is not None
            else TransportConfig(),
            root.fork(f"transport/{label}/{offered_load}"),
        )
    else:
        # Governor-only recovery is PR 1's source retry (never stacked
        # with the transport: both re-offering the same loss would
        # double-inject).
        retry = SourceRetry(
            sim_engine,
            RetryPolicy(max_attempts=4, base_delay=64.0, max_delay=1024.0),
            root.fork(f"retry/{label}/{offered_load}"),
        )

    spec = WorkloadSpec(k=network.k, n=network.n)
    workload: Workload = spec.builder(run_cfg)(offered_load)
    workload.governor = governor
    workload.transport = transport
    installed = workload.install(
        env, sim_engine, root.fork(f"workload/{label}/{offered_load}")
    )
    if installed == 0:
        raise RuntimeError("workload installed no traffic sources")
    sim_engine.start()

    warmup_deadline = env.now + run_cfg.max_cycles / 4
    while (
        sim_engine.stats.delivered_packets < run_cfg.warmup_packets
        and env.now < warmup_deadline
    ):
        _check_point_deadline()
        env.run(until=min(env.now + 512, warmup_deadline))

    window = MeasurementWindow(sim_engine)
    window.begin()
    batch_cycles = max(1.0, run_cfg.max_cycles / batches)
    series: list[float] = []
    prev_flits = sim_engine.stats.delivered_flits
    for _ in range(batches):
        _check_point_deadline()
        env.run(until=env.now + batch_cycles)
        flits = sim_engine.stats.delivered_flits
        series.append((flits - prev_flits) / (n_nodes * batch_cycles))
        prev_flits = flits
    measurement = window.finish()

    steady = analyze_series(series)
    classification = classify(steady, knee_throughput)
    assert retry is None or retry.engine is sim_engine  # keeps the sub alive
    return TransportPoint(
        mode=mode,
        load_factor=load_factor,
        offered_load=offered_load,
        measurement=measurement,
        steady=steady,
        stability=classification,
        mean_rate=governor.mean_rate() if governor is not None else 1.0,
        messages_sent=transport.messages_sent if transport else 0,
        messages_delivered=transport.messages_delivered if transport else 0,
        messages_aborted=transport.messages_aborted if transport else 0,
        delivered_ratio=(
            transport.delivered_ratio() if transport else float("nan")
        ),
    )


def transport_sweep(
    network: NetworkConfig,
    run_cfg: RunConfig,
    load_factors: Sequence[float] = LOAD_FACTORS,
    modes: Sequence[str] = MODES,
    capacity: int = DEFAULT_CAPACITY,
    fault_rate: float = DEFAULT_FAULT_RATE,
    mttr: float = DEFAULT_MTTR,
    transport_config: Optional[TransportConfig] = None,
    batches: int = DEFAULT_BATCHES,
    engine: Optional[str] = None,
) -> TransportResult:
    """One network's storm profile over the knee-multiple ladder."""
    from repro.experiments.workload_spec import WorkloadSpec

    spec = WorkloadSpec(k=network.k, n=network.n)
    knee = find_saturation(network, spec.builder(run_cfg), run_cfg)
    knee_thr = knee.throughput_percent / 100.0
    points = tuple(
        transport_point(
            network,
            run_cfg,
            offered_load=factor * knee.load,
            knee_throughput=knee_thr,
            load_factor=factor,
            mode=mode,
            capacity=capacity,
            fault_rate=fault_rate,
            mttr=mttr,
            transport_config=transport_config,
            batches=batches,
            engine=engine,
        )
        for factor in load_factors
        for mode in modes
    )
    return TransportResult(network.label, knee, points)


def transport_comparison(
    run_cfg: RunConfig,
    load_factors: Sequence[float] = LOAD_FACTORS,
    kinds: Sequence[str] = ("tmin", "dmin", "vmin", "bmin"),
    modes: Sequence[str] = MODES,
    batches: int = DEFAULT_BATCHES,
    engine: Optional[str] = None,
) -> list[TransportResult]:
    """The four networks' storm profiles, side by side."""
    return [
        transport_sweep(
            NetworkConfig(kind),
            run_cfg,
            load_factors,
            modes=modes,
            batches=batches,
            engine=engine,
        )
        for kind in kinds
    ]


def render_transport(results: Sequence[TransportResult]) -> str:
    """Aligned text tables, one block per network."""
    lines = [
        "=== transport: governor vs end-to-end recovery under loss ==="
    ]
    for r in results:
        lines.append("")
        lines.append(f"## {r.label} -- {r.knee}")
        lines.append(
            f"{'xknee':>6} | {'mode':>9} | {'thr %':>7} | {'good %':>7} "
            f"| {'class':>10} | {'rate':>5} | {'retx':>5} | {'rto':>5} "
            f"| {'dup':>5} | {'fabrt':>5} | {'shed':>5} | {'ratio':>6}"
        )
        lines.append("-" * 104)
        for p in r.points:
            m = p.measurement
            good = (
                "-" if math.isnan(m.goodput_percent)
                else f"{m.goodput_percent:7.2f}"
            )
            ratio = (
                "-" if math.isnan(p.delivered_ratio)
                else f"{p.delivered_ratio:6.3f}"
            )
            lines.append(
                f"{p.load_factor:6.2f} | {p.mode:>9} | "
                f"{m.throughput_percent:7.2f} | {good:>7} | "
                f"{p.stability:>10} | {p.mean_rate:5.2f} | "
                f"{m.retransmitted_packets:5d} | {m.rto_fires:5d} | "
                f"{m.dup_acks:5d} | {m.flows_aborted:5d} | "
                f"{m.shed_packets:5d} | {ratio:>6}"
            )
    return "\n".join(lines)


def transport_checks(
    results: Sequence[TransportResult],
    max_attempts: int = TransportConfig().max_attempts,
) -> list[ShapeCheck]:
    """Qualitative claims the transport study must deliver."""
    checks: list[ShapeCheck] = []

    def check(claim: str, passed: bool, detail: str) -> None:
        checks.append(ShapeCheck(claim, passed, detail))

    for r in results:
        name = r.label
        # Every point settled into something classifiable (no wedge).
        unclassified = [
            (p.load_factor, p.mode)
            for p in r.points
            if p.stability not in ("stable", "metastable", "collapsed")
        ]
        check(
            f"{name}: every storm point classified",
            not unclassified,
            f"unclassified: {unclassified or 'none'}",
        )
        transported = [p for p in r.points if p.mode != "governor"]
        # Goodput can never exceed raw delivered throughput.
        bad_good = [
            (p.load_factor, p.mode)
            for p in transported
            if not math.isnan(p.measurement.goodput_percent)
            and p.measurement.goodput_percent
            > p.measurement.throughput_percent + 1e-9
        ]
        check(
            f"{name}: goodput bounded by raw throughput",
            not bad_good,
            f"violations: {bad_good or 'none'}",
        )
        # Bounded retransmissions: the per-segment attempt cap bounds
        # window retransmissions by max_attempts x offered data.
        unbounded = [
            (p.load_factor, p.mode)
            for p in transported
            if p.measurement.retransmitted_packets
            > max_attempts * max(1, p.measurement.offered_packets)
        ]
        check(
            f"{name}: retransmissions bounded by the attempt cap",
            not unbounded,
            f"violations: {unbounded or 'none'}",
        )
        # End-to-end accounting: settled outcomes are delivered or
        # aborted, nothing silently lost (ratio is a real number once
        # any message settled).
        broken = [
            (p.load_factor, p.mode)
            for p in transported
            if p.messages_sent > 0 and math.isnan(p.delivered_ratio)
        ]
        check(
            f"{name}: end-to-end outcomes settle under the storm",
            not broken,
            f"no-outcome points: {broken or 'none'}",
        )
    return checks
