"""Saturation-point search.

The single most quoted number per (network, workload) pair is the
*saturation load*: the highest offered load the network sustains (no
source queue exceeding the paper's 100-message criterion).  This module
finds it by bisection over offered load -- cheaper and more precise
than reading it off a fixed load ladder.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.config import NetworkConfig, RunConfig
from repro.experiments.runner import WorkloadBuilder, run_point


@dataclass(frozen=True)
class SaturationPoint:
    """Result of a saturation search."""

    load: float               # highest sustainable offered load found
    throughput_percent: float  # measured throughput there
    avg_latency: float
    iterations: int

    def __str__(self) -> str:
        return (
            f"saturates near load {self.load:.3f} "
            f"({self.throughput_percent:.1f}% throughput, "
            f"latency {self.avg_latency:.0f} cyc)"
        )


def find_saturation(
    network: NetworkConfig,
    workload_builder: WorkloadBuilder,
    run_cfg: RunConfig,
    lo: float = 0.02,
    hi: float = 1.0,
    tolerance: float = 0.02,
    max_iterations: int = 12,
) -> SaturationPoint:
    """Bisect offered load for the sustainability boundary.

    Assumes sustainability is monotone in load (true up to simulation
    noise; the tolerance bounds how finely we chase the boundary).
    Raises if even ``lo`` saturates.
    """
    if not 0 < lo < hi:
        raise ValueError("need 0 < lo < hi")

    def probe(load: float):
        return run_point(network, workload_builder, load, run_cfg)

    best = probe(lo)
    if not best.sustainable:
        raise RuntimeError(
            f"{network.label} saturates below load {lo}; lower `lo`"
        )
    best_load = lo
    iterations = 1

    top = probe(hi)
    iterations += 1
    if top.sustainable:
        return SaturationPoint(
            hi, top.throughput_percent, top.avg_latency, iterations
        )

    while hi - best_load > tolerance and iterations < max_iterations:
        mid = (best_load + hi) / 2
        m = probe(mid)
        iterations += 1
        if m.sustainable:
            best, best_load = m, mid
        else:
            hi = mid
    return SaturationPoint(
        best_load, best.throughput_percent, best.avg_latency, iterations
    )
