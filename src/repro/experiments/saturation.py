"""Saturation-point search.

The single most quoted number per (network, workload) pair is the
*saturation load*: the highest offered load the network sustains (no
source queue exceeding the paper's 100-message criterion).  This module
finds it by bisection over offered load -- cheaper and more precise
than reading it off a fixed load ladder.

The search always returns an explicit :class:`SaturationPoint`; the
edge cases that used to be exceptions are now statuses so sweep drivers
(e.g. :mod:`repro.experiments.stability`) can react instead of crash:

* ``"converged"`` -- the bisection bracketed the boundary to within
  ``tolerance``; ``load`` is the highest *sustainable* probe.
* ``"lo_saturated"`` -- even the lightest probe ``lo`` was
  unsustainable; ``load`` is ``lo`` and the measurement describes that
  saturated point.  The true knee lies below ``lo``.
* ``"hi_sustainable"`` -- even ``hi`` was sustainable; ``load`` is
  ``hi``.  The true knee lies above ``hi`` (or does not exist: the
  fabric outruns the offered-load ceiling).

``probe`` is injectable for unit tests: any callable mapping an offered
load to a :class:`~repro.metrics.collector.Measurement`-like object
with ``sustainable`` / ``throughput_percent`` / ``avg_latency``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.experiments.config import NetworkConfig, RunConfig
from repro.experiments.runner import WorkloadBuilder, run_point
from repro.metrics.collector import SUSTAINABILITY_QUEUE_LIMIT

#: Search statuses (see module docs).
CONVERGED = "converged"
LO_SATURATED = "lo_saturated"
HI_SUSTAINABLE = "hi_sustainable"

SATURATION_STATUSES = (CONVERGED, LO_SATURATED, HI_SUSTAINABLE)


@dataclass(frozen=True)
class SaturationPoint:
    """Result of a saturation search."""

    load: float                # highest sustainable offered load found
    throughput_percent: float  # measured throughput there
    avg_latency: float
    iterations: int
    #: Queue-length criterion the probes classified against (messages).
    queue_limit: int = SUSTAINABILITY_QUEUE_LIMIT
    #: How the search ended (see module docs).
    status: str = CONVERGED

    def __post_init__(self) -> None:
        if self.status not in SATURATION_STATUSES:
            raise ValueError(
                f"unknown saturation status {self.status!r}; "
                f"valid: {', '.join(SATURATION_STATUSES)}"
            )

    @property
    def bracketed(self) -> bool:
        """True when the knee was actually bracketed by the search."""
        return self.status == CONVERGED

    def __str__(self) -> str:
        if self.status == LO_SATURATED:
            return (
                f"saturates below load {self.load:.3f} "
                f"(lightest probe already unsustainable, "
                f"queue limit {self.queue_limit})"
            )
        qualifier = "sustains up to" if self.status == HI_SUSTAINABLE \
            else "saturates near"
        return (
            f"{qualifier} load {self.load:.3f} "
            f"({self.throughput_percent:.1f}% throughput, "
            f"latency {self.avg_latency:.0f} cyc)"
        )


#: A saturation probe: offered load -> Measurement(-like).
SaturationProbe = Callable[[float], object]


def find_saturation(
    network: NetworkConfig,
    workload_builder: WorkloadBuilder,
    run_cfg: RunConfig,
    lo: float = 0.02,
    hi: float = 1.0,
    tolerance: float = 0.02,
    max_iterations: int = 12,
    queue_limit: int = SUSTAINABILITY_QUEUE_LIMIT,
    probe: Optional[SaturationProbe] = None,
) -> SaturationPoint:
    """Bisect offered load for the sustainability boundary.

    Assumes sustainability is monotone in load (true up to simulation
    noise; the tolerance bounds how finely we chase the boundary).
    Never raises on the edge cases: a ``lo`` that already saturates or
    a ``hi`` that still sustains is reported through
    :attr:`SaturationPoint.status` (see module docs).

    ``probe`` overrides the default ``run_point`` call -- unit tests
    stub it; production callers leave it None.
    """
    if not 0 < lo < hi:
        raise ValueError("need 0 < lo < hi")
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")
    if max_iterations < 2:
        raise ValueError("max_iterations must be >= 2")

    if probe is None:
        def probe(load: float):
            return run_point(network, workload_builder, load, run_cfg)

    best = probe(lo)
    iterations = 1
    if not best.sustainable:
        return SaturationPoint(
            lo,
            best.throughput_percent,
            best.avg_latency,
            iterations,
            queue_limit=queue_limit,
            status=LO_SATURATED,
        )
    best_load = lo

    top = probe(hi)
    iterations += 1
    if top.sustainable:
        return SaturationPoint(
            hi,
            top.throughput_percent,
            top.avg_latency,
            iterations,
            queue_limit=queue_limit,
            status=HI_SUSTAINABLE,
        )

    while hi - best_load > tolerance and iterations < max_iterations:
        mid = (best_load + hi) / 2
        m = probe(mid)
        iterations += 1
        if m.sustainable:
            best, best_load = m, mid
        else:
            hi = mid
    return SaturationPoint(
        best_load,
        best.throughput_percent,
        best.avg_latency,
        iterations,
        queue_limit=queue_limit,
        status=CONVERGED,
    )
