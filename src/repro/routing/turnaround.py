"""The turnaround routing algorithm of Fig. 7, as per-switch decisions.

Each switch at stage ``j`` inspects only the source/destination
addresses carried by the message and the side the message arrived on:

1. ``t = FirstDifference(S, D)`` (``j <= t`` always holds en route);
2. if ``j == t``: turnaround connection to left output port ``l_{d_j}``;
3. if ``j < t`` and the message arrived on a *left* input port: forward
   connection to any available right port (adaptive — the engine picks
   randomly among the free ones);
4. if ``j < t`` and the message arrived on a *right* input port:
   backward connection to left output port ``l_{d_j}``.

The decision is purely local; no switch needs global traffic knowledge
(Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.topology.bmin import BidirectionalMIN, first_difference
from repro.topology.permutations import to_digits


class Move(Enum):
    """Connection type selected inside a bidirectional switch (Fig. 2)."""

    FORWARD = "forward"        # left input  -> right output
    BACKWARD = "backward"      # right input -> left output
    TURNAROUND = "turnaround"  # left input  -> left output


@dataclass(frozen=True)
class RouteDecision:
    """Outcome of a per-switch routing step.

    ``ports`` lists candidate output port indices on the side implied by
    ``move`` (right side for FORWARD, left side otherwise).  A
    deterministic step has exactly one candidate; the adaptive forward
    step lists all k right ports, to be filtered by availability.
    """

    move: Move
    ports: tuple[int, ...]

    @property
    def is_adaptive(self) -> bool:
        """More than one legal output (the forward phase's freedom)."""
        return len(self.ports) > 1


class TurnaroundRouter:
    """Executes Fig. 7 for every switch of a :class:`BidirectionalMIN`."""

    def __init__(self, bmin: BidirectionalMIN) -> None:
        self.bmin = bmin
        self.k, self.n = bmin.k, bmin.n

    def turn_stage(self, source: int, destination: int) -> int:
        """``FirstDifference(S, D)``; raises for S == D."""
        return first_difference(source, destination, self.k, self.n)

    def decide(
        self,
        stage: int,
        came_from_left: bool,
        source: int,
        destination: int,
    ) -> RouteDecision:
        """One execution of the Fig. 7 algorithm at stage ``stage``.

        Parameters
        ----------
        stage:
            The stage ``j`` of the switch executing the step.
        came_from_left:
            True if the message entered on a left (lower) input port --
            i.e. it is still in its forward phase or about to turn.
        source, destination:
            Addresses carried in the message header.
        """
        if not 0 <= stage < self.n:
            raise ValueError(f"stage {stage} out of range")
        t = self.turn_stage(source, destination)
        if stage > t:
            raise ValueError(
                f"message for t={t} can never reach stage {stage} "
                "(turnaround routing ascends exactly to FirstDifference)"
            )
        d_digits = to_digits(destination, self.k, self.n)
        if stage == t:
            if not came_from_left:
                raise ValueError(
                    "a message arriving on a right port at its turn stage "
                    "would have overshot; the r->r connection is forbidden"
                )
            return RouteDecision(Move.TURNAROUND, (d_digits[stage],))
        if came_from_left:
            return RouteDecision(Move.FORWARD, tuple(range(self.k)))
        return RouteDecision(Move.BACKWARD, (d_digits[stage],))

    def hops(self, source: int, destination: int) -> int:
        """Number of switch traversals: ``t + 1`` up (incl. turn) + ``t`` down."""
        t = self.turn_stage(source, destination)
        return 2 * t + 1

    def walk(
        self, source: int, destination: int, forward_choices: Optional[list[int]] = None
    ) -> list[tuple[int, Move, int]]:
        """Full route as ``(stage, move, output_port)`` steps.

        ``forward_choices[j]`` fixes the right port taken at stage ``j``
        (defaults to all zeros).  Mainly a verification helper: the walk
        must visit stages ``0..t..0`` and end on the destination's line.
        """
        t = self.turn_stage(source, destination)
        if forward_choices is None:
            forward_choices = [0] * t
        if len(forward_choices) != t:
            raise ValueError(f"need exactly t={t} forward choices")
        steps: list[tuple[int, Move, int]] = []
        for j in range(t):
            decision = self.decide(j, True, source, destination)
            port = forward_choices[j]
            if port not in decision.ports:
                raise ValueError(f"choice {port} invalid at stage {j}")
            steps.append((j, Move.FORWARD, port))
        decision = self.decide(t, True, source, destination)
        steps.append((t, Move.TURNAROUND, decision.ports[0]))
        for j in range(t - 1, -1, -1):
            decision = self.decide(j, False, source, destination)
            steps.append((j, Move.BACKWARD, decision.ports[0]))
        return steps
