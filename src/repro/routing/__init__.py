"""Distributed routing decisions executed inside each switch.

The topology package answers *static* questions (which paths exist);
this package answers the *dynamic* one the simulator asks every time a
header flit sits at a switch input: *which output(s) may this packet
take next?*

* :mod:`repro.routing.tags` -- destination-tag routing for the
  unidirectional MINs (TMIN / DMIN / VMIN share it; only the channel
  multiplicity behind the chosen port differs).
* :mod:`repro.routing.turnaround` -- the turnaround routing algorithm of
  Fig. 7, executed per switch: forward (any free right port), turnaround
  (left port ``l_{d_t}``) and backward (left port ``l_{d_j}``) moves.

Both routers return :class:`RouteDecision` objects naming candidate
output ports; the wormhole engine resolves candidates against channel
availability (random free choice for DMIN lanes and BMIN forward hops).
"""

from repro.routing.tags import TagRouter
from repro.routing.turnaround import Move, RouteDecision, TurnaroundRouter

__all__ = ["Move", "RouteDecision", "TagRouter", "TurnaroundRouter"]
