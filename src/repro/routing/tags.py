"""Destination-tag routing for the unidirectional MINs.

TMIN, DMIN and VMIN all use the same self-routing rule: stage ``G_i``
forwards a packet out of port ``t_i``, where the tag ``t_0 .. t_{n-1}``
is a fixed function of the destination address (butterfly vs. cube MINs
differ only in that function and in the connection patterns).  The
networks differ *behind* the chosen port:

* TMIN -- one channel per port (block if busy);
* DMIN -- ``d`` channels per port (random free one; block if all busy);
* VMIN -- ``v`` virtual channels over one wire (any free VC; block if
  none).

Those multiplicities live in the wormhole engine; this router only maps
(stage, destination) to the output port.
"""

from __future__ import annotations

from repro.topology.spec import MINSpec


class TagRouter:
    """Per-switch destination-tag routing over a :class:`MINSpec`."""

    def __init__(self, spec: MINSpec) -> None:
        self.spec = spec
        # Tags are pure functions of the destination: precompute all N.
        self._tags: tuple[tuple[int, ...], ...] = tuple(
            spec.routing_tag(d) for d in range(spec.N)
        )

    def output_port(self, stage: int, destination: int) -> int:
        """The port ``t_stage`` a packet for ``destination`` must take."""
        if not 0 <= stage < self.spec.n:
            raise ValueError(f"stage {stage} out of range")
        if not 0 <= destination < self.spec.N:
            raise ValueError(f"destination {destination} out of range")
        return self._tags[destination][stage]

    def tag(self, destination: int) -> tuple[int, ...]:
        """The full routing tag for ``destination``."""
        if not 0 <= destination < self.spec.N:
            raise ValueError(f"destination {destination} out of range")
        return self._tags[destination]

    def hops(self) -> int:
        """Switch traversals for any route: always ``n`` (plus delivery)."""
        return self.spec.n
