"""Memoized routing tables for the simulated networks.

Routing in all four networks is a pure function of static identity --
the unique (boundary, position) path of a unidirectional MIN depends
only on (source, destination); a BMIN header's candidate channels
depend only on (phase, boundary, line, destination digit).  The
generic code still recomputed them per packet per cycle: digit
decompositions, path walks, list builds.  These tables compute each
answer once and hand back the cached object.

Contract: callers treat returned lists as **read-only** (the engine
copies before filtering; the verify subsystem only iterates).  Because
the memoized functions are pure, memoization is unconditional -- both
the fast and the reference engine paths see identical routing answers,
which ``tests/differential`` checks end to end.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.topology.bmin import first_difference
from repro.topology.permutations import from_digits, to_digits

if TYPE_CHECKING:  # pragma: no cover
    from repro.topology.spec import MINSpec
    from repro.wormhole.channel import PhysChannel


class PathTable:
    """Per-(source, destination) memo of a MIN's unique slot path.

    Computes what :meth:`repro.topology.spec.MINSpec.channels_of_path`
    would -- bit-identically, asserted by the routing tests -- but
    inlines the trace against the raw connection tables (no
    ``TracedPath`` object, no per-call validation) and memoizes the
    destination's tag digits, because under short load points the table
    is cold for most pairs and the miss path *is* the hot path.  The
    returned list is shared between every packet travelling the same
    pair, so injection costs one dict hit after the first packet.
    """

    __slots__ = ("spec", "_paths", "_tags", "_tables", "_k")

    def __init__(self, spec: "MINSpec") -> None:
        self.spec = spec
        self._paths: dict[int, list[tuple[int, int]]] = {}
        #: destination -> tag digits (``routing_tag`` validates once).
        self._tags: dict[int, tuple[int, ...]] = {}
        #: Raw position-mapping tables of ``C_0 .. C_{n-1}``.
        self._tables = tuple(c.table for c in spec.connections[: spec.n])
        self._k = spec.k

    def path(self, src: int, dst: int) -> list[tuple[int, int]]:
        """The (boundary, position) slots of the unique src->dst path."""
        key = src * self.spec.N + dst
        cached = self._paths.get(key)
        if cached is None:
            tag = self._tags.get(dst)
            if tag is None:
                tag = self.spec.routing_tag(dst)
                self._tags[dst] = tag
            k = self._k
            pos = src
            cached = [(0, src)]
            # Producer-side position of boundary i+1 is the stage's
            # exit position: enter through C_i, replace the low digit
            # with the tag digit (``(pos // k) * k + tag[i]``).
            for i, table in enumerate(self._tables):
                pos = table[pos]
                pos += tag[i] - pos % k
                cached.append((i + 1, pos))
            self._paths[key] = cached
        return cached

    def __len__(self) -> int:
        return len(self._paths)


class BminTables:
    """Per-(switch, destination-tag) candidate memo for turnaround routing.

    Three query shapes mirror Fig. 7's decision:

    * *up, non-turn* -- all k forward channels out of the stage-b switch
      on ``line``; independent of the destination;
    * *up, turn* -- the single backward channel selected by the
      destination's digit b;
    * *down* -- the single backward channel selected by digit b-1.

    Keys use the relevant destination **digit**, not the whole
    destination, so the tables stay small (O(n * N * k) entries total).
    """

    __slots__ = ("k", "n", "N", "_fwd", "_bwd", "_up", "_turn", "_down", "_turns")

    def __init__(
        self,
        k: int,
        n: int,
        fwd: dict[tuple[int, int], "PhysChannel"],
        bwd: dict[tuple[int, int], "PhysChannel"],
    ) -> None:
        self.k = k
        self.n = n
        self.N = k**n
        self._fwd = fwd
        self._bwd = bwd
        self._up: dict[tuple[int, int], list["PhysChannel"]] = {}
        self._turn: dict[tuple[int, int, int], list["PhysChannel"]] = {}
        self._down: dict[tuple[int, int, int], list["PhysChannel"]] = {}
        self._turns: dict[int, int] = {}

    def turn(self, src: int, dst: int) -> int:
        """Memoized :func:`~repro.topology.bmin.first_difference`."""
        key = src * self.N + dst
        t = self._turns.get(key)
        if t is None:
            t = first_difference(src, dst, self.k, self.n)
            self._turns[key] = t
        return t

    def up_candidates(self, boundary: int, line: int) -> list["PhysChannel"]:
        """All k forward channels out of the stage-``boundary`` switch."""
        key = (boundary, line)
        out = self._up.get(key)
        if out is None:
            k = self.k
            digits = list(to_digits(line, k, self.n))
            out = []
            for i in range(k):
                digits[boundary] = i
                out.append(self._fwd[(boundary + 1, from_digits(digits, k))])
            self._up[key] = out
        return out

    def turn_candidates(
        self, boundary: int, line: int, dst: int
    ) -> list["PhysChannel"]:
        """The single turnaround channel (left port l_{d_b})."""
        k = self.k
        digit = to_digits(dst, k, self.n)[boundary]
        key = (boundary, line, digit)
        out = self._turn.get(key)
        if out is None:
            digits = list(to_digits(line, k, self.n))
            digits[boundary] = digit
            out = [self._bwd[(boundary, from_digits(digits, k))]]
            self._turn[key] = out
        return out

    def down_candidates(
        self, boundary: int, line: int, dst: int
    ) -> list["PhysChannel"]:
        """The single next backward channel (left port l_{d_{b-1}})."""
        k = self.k
        digit = to_digits(dst, k, self.n)[boundary - 1]
        key = (boundary, line, digit)
        out = self._down.get(key)
        if out is None:
            digits = list(to_digits(line, k, self.n))
            digits[boundary - 1] = digit
            out = [self._bwd[(boundary - 1, from_digits(digits, k))]]
            self._down[key] = out
        return out
