"""Alternative switching techniques for comparison (Section 1).

The paper motivates wormhole switching against the two older
techniques: *store-and-forward* (packet switching: the whole packet is
buffered at every hop -- latency grows multiplicatively with distance)
and *circuit switching* (a setup probe reserves the whole path, then
the payload streams -- used by the BBN GP-1000/TC-2000).

These simulators run on the :mod:`repro.sim` kernel with channels as
resources; they model contention at packet granularity (not flit
level), which is the right fidelity for the latency-structure
comparison:

* store-and-forward: ``latency ~ hops * (L + 1)``;
* circuit switching: ``latency ~ hops (setup) + L (stream)``;
* wormhole (the flit-level engine): ``latency ~ hops + L``.

The wormhole/SAF/circuit contrast -- and wormhole's
distance-insensitivity -- is benchmarked in
``benchmarks/bench_switching.py``.
"""

from repro.switching.engines import (
    CircuitSwitchedNetwork,
    StoreForwardNetwork,
    SwitchedResult,
)

__all__ = [
    "CircuitSwitchedNetwork",
    "StoreForwardNetwork",
    "SwitchedResult",
]
