"""Store-and-forward and circuit-switched MIN simulators.

Both run over the unique paths of a Delta MIN
(:meth:`MINSpec.channels_of_path`), model every channel as a
:class:`repro.sim.Resource` with one slot per physical channel
(``dilation`` slots for a dilated network), and use the process-based
kernel directly -- a deliberately different style from the flit-level
wormhole engine, exercising the DES substrate end to end.

Timing model (one cycle = one flit across one channel):

* **store-and-forward**: per hop, the packet seizes the channel, spends
  ``L`` cycles transferring into the next switch's buffer (assumed
  ample -- the very cost wormhole switching avoids), releases, repeats.
  One extra cycle per hop covers routing/decode.
* **circuit switching**: the setup probe walks the path seizing every
  channel (1 cycle per hop, waiting on busy ones -- channels are held
  while waiting, like the BBN machines), then the payload streams for
  ``L`` cycles, then the whole circuit is torn down at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.core import Environment
from repro.sim.resources import Resource
from repro.topology.spec import MINSpec


@dataclass
class SwitchedResult:
    """Delivery record of one message under SAF or circuit switching."""

    src: int
    dst: int
    length: int
    created: float
    delivered_at: Optional[float] = None

    @property
    def latency(self) -> float:
        """Send to full delivery, in cycles."""
        if self.delivered_at is None:
            raise AttributeError("message not yet delivered")
        return self.delivered_at - self.created


class _SwitchedNetwork:
    """Shared plumbing: channel resources over a MINSpec."""

    def __init__(
        self, env: Environment, spec: MINSpec, dilation: int = 1
    ) -> None:
        if dilation < 1:
            raise ValueError("dilation must be >= 1")
        self.env = env
        self.spec = spec
        self.dilation = dilation
        self.channels: dict[tuple[int, int], Resource] = {}
        for boundary in range(spec.n + 1):
            # Injection and delivery stay single (one-port nodes).
            width = dilation if 0 < boundary < spec.n else 1
            for pos in range(spec.N):
                self.channels[(boundary, pos)] = Resource(env, capacity=width)
        self.results: list[SwitchedResult] = []

    def send(self, src: int, dst: int, length: int) -> SwitchedResult:
        """Start a message process now; returns its (live) record."""
        if length < 1:
            raise ValueError("a message needs at least one flit")
        record = SwitchedResult(src, dst, length, created=self.env.now)
        self.results.append(record)
        self.env.process(self._transfer(record), name=f"msg-{src}-{dst}")
        return record

    def _transfer(self, record: SwitchedResult):  # pragma: no cover - abstract
        raise NotImplementedError

    def delivered(self) -> list[SwitchedResult]:
        """Messages that have completed."""
        return [r for r in self.results if r.delivered_at is not None]


class StoreForwardNetwork(_SwitchedNetwork):
    """Packet switching: buffer the whole packet at every hop."""

    def _transfer(self, record: SwitchedResult):
        env = self.env
        path = self.spec.channels_of_path(record.src, record.dst)
        for hop in path:
            with self.channels[hop].request() as req:
                yield req
                # 1 cycle of routing/decode + L cycles moving the packet
                # across the channel into the next buffer.
                yield env.timeout(1 + record.length)
        record.delivered_at = env.now


class CircuitSwitchedNetwork(_SwitchedNetwork):
    """Circuit switching: reserve the whole path, stream, tear down."""

    def _transfer(self, record: SwitchedResult):
        env = self.env
        path = self.spec.channels_of_path(record.src, record.dst)
        held = []
        try:
            # Setup probe: seize channels hop by hop (holding earlier
            # ones while waiting -- the source of circuit switching's
            # poor behaviour under contention).
            for hop in path:
                req = self.channels[hop].request()
                yield req
                held.append((self.channels[hop], req))
                yield env.timeout(1)
            # Stream the payload over the established circuit.
            yield env.timeout(record.length)
            record.delivered_at = env.now
        finally:
            for resource, req in held:
                resource.release(req)
