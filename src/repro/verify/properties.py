"""Exhaustive routing-property checks per network configuration.

Each function machine-checks one of the paper's proved statements
against a *live* :class:`~repro.wormhole.network.SimNetwork` (routes
are enumerated through the simulator's own routing interface, see
:mod:`repro.verify.cdg`):

* **Deadlock freedom** (Section 3.2.1): the channel dependency graph is
  acyclic, at channel and at virtual-lane granularity;
* **Theorem 1**: the BMIN offers exactly ``k**t`` shortest paths of
  length ``2(t+1)`` channels, ``t = FirstDifference(S, D)``; the
  unidirectional MINs offer exactly one slot-path of length ``n+1``
  (``d**(n-1)`` physical channel routes when d-dilated);
* **Delivery correctness**: every enumerated route ends at the
  destination's delivery channel;
* **Lemma 1 / Theorem 2**: cube MINs partition into channel-balanced,
  contention-free base k-ary m-cube clusters at every ``m``;
* **Theorem 3**: butterfly MINs do *not* partition (every nontrivial
  base partition breaks balance or contention-freedom);
* **Theorem 4**: BMIN base cubes are channel-balanced and
  contention-free.

:func:`verify_config` bundles the applicable checks for one
(kind, k, n, topology) configuration into a
:class:`VerificationReport`; :func:`all_small_configs` enumerates every
``k**n <= 64`` configuration the CLI's ``--all-small`` certifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from repro.partition.analysis import (
    bmin_cluster_line_usage,
    bmin_clusters_are_contention_free,
    cluster_channel_usage,
    clusters_are_contention_free,
)
from repro.partition.cubes import Cube
from repro.topology.bmin import BidirectionalMIN, first_difference
from repro.topology.spec import MINSpec
from repro.verify.cdg import (
    CyclicRouteError,
    check_acyclic,
    check_escape_acyclic,
    check_escape_coverage,
    enumerate_routes,
)
from repro.direct.network import DirectNetwork
from repro.wormhole.channel import PhysChannel
from repro.wormhole.network import (
    BidirectionalNetwork,
    NetworkKind,
    SimNetwork,
    UnidirectionalNetwork,
    build_network,
)


@dataclass(frozen=True)
class CheckResult:
    """One verified (or refuted) property."""

    name: str
    ok: bool
    detail: str = ""

    def __str__(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        tail = f": {self.detail}" if self.detail else ""
        return f"  [{status}] {self.name}{tail}"


@dataclass
class VerificationReport:
    """All checks run against one network configuration."""

    config: str
    checks: list[CheckResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True iff every check passed."""
        return all(c.ok for c in self.checks)

    def failures(self) -> list[CheckResult]:
        """The failed checks."""
        return [c for c in self.checks if not c.ok]

    def add(self, name: str, ok: bool, detail: str = "") -> None:
        """Append one check outcome."""
        self.checks.append(CheckResult(name, ok, detail))

    def __str__(self) -> str:
        head = "ok" if self.ok else "FAILED"
        lines = [f"{self.config}: {head} ({len(self.checks)} checks)"]
        lines.extend(str(c) for c in self.checks)
        return "\n".join(lines)


# -- path properties ----------------------------------------------------------


def _check_unidirectional_paths(
    net: UnidirectionalNetwork, report: VerificationReport
) -> None:
    """Unique slot path, ``d**(n-1)`` channel routes, length ``n+1``."""
    spec = net.spec
    expected_routes = net.dilation ** max(spec.n - 1, 0)
    expected_len = spec.n + 1
    pairs = worst = 0
    for src in range(net.N):
        for dst in range(net.N):
            if src == dst:
                continue
            pairs += 1
            routes = enumerate_routes(net, src, dst)
            if len(routes) != expected_routes:
                report.add(
                    "path-count",
                    False,
                    f"({src},{dst}): {len(routes)} routes, "
                    f"expected d**(n-1) = {expected_routes}",
                )
                return
            slot_path = spec.channels_of_path(src, dst)
            for route in routes:
                if len(route) != expected_len:
                    report.add(
                        "path-length",
                        False,
                        f"({src},{dst}): route of {len(route)} channels, "
                        f"expected n+1 = {expected_len}",
                    )
                    return
                slots = [net_slot_of(net, ch) for ch in route]
                if slots != slot_path:
                    report.add(
                        "unique-slot-path",
                        False,
                        f"({src},{dst}): route deviates from the unique "
                        f"destination-tag path at {slots}",
                    )
                    return
                last = route[-1]
                if not last.is_delivery or last.sink != dst:
                    report.add(
                        "delivery-correctness",
                        False,
                        f"({src},{dst}): route ends at {last.label} "
                        f"(sink {last.sink})",
                    )
                    return
            worst = max(worst, len(routes))
    report.add(
        "path-count",
        True,
        f"{pairs} pairs x {expected_routes} routes (d**(n-1))",
    )
    report.add("path-length", True, f"all routes are n+1 = {expected_len} channels")
    report.add("unique-slot-path", True, "every route follows the tag path")
    report.add("delivery-correctness", True, "every route ends at its destination")


def net_slot_of(
    net: UnidirectionalNetwork, channel: PhysChannel
) -> Optional[tuple[int, int]]:
    """The (boundary, position) slot a channel of ``net`` serves."""
    for slot, chans in net.slots.items():
        if channel in chans:
            return slot
    return None


def _check_bmin_paths(
    net: BidirectionalNetwork, report: VerificationReport
) -> None:
    """Theorem 1: ``k**t`` shortest routes of ``2(t+1)`` channels."""
    bmin = net.bmin
    k, n = bmin.k, bmin.n
    pairs = 0
    for src in range(net.N):
        for dst in range(net.N):
            if src == dst:
                continue
            pairs += 1
            t = first_difference(src, dst, k, n)
            try:
                routes = enumerate_routes(net, src, dst)
            except CyclicRouteError as exc:
                report.add("path-count", False, str(exc))
                return
            if len(routes) != k**t:
                report.add(
                    "path-count",
                    False,
                    f"({src},{dst}): {len(routes)} routes, expected "
                    f"k**t = {k**t} (Theorem 1)",
                )
                return
            expected_len = 2 * (t + 1)
            for route in routes:
                if len(route) != expected_len:
                    report.add(
                        "path-length",
                        False,
                        f"({src},{dst}): route of {len(route)} channels, "
                        f"expected 2(t+1) = {expected_len}",
                    )
                    return
                last = route[-1]
                if not last.is_delivery or last.sink != dst:
                    report.add(
                        "delivery-correctness",
                        False,
                        f"({src},{dst}): route ends at {last.label} "
                        f"(sink {last.sink})",
                    )
                    return
            # Cross-check against the combinatorial enumeration
            # (topology-level Theorem 1 artifact).
            combinatorial = {
                tuple(
                    f"{dirn}{b}[{line}]" for dirn, b, line in path.channels()
                )
                for path in bmin.enumerate_shortest_paths(src, dst)
            }
            simulated = {
                tuple(ch.label for ch in route) for route in routes
            }
            if combinatorial != simulated:
                report.add(
                    "path-cross-check",
                    False,
                    f"({src},{dst}): simulated routes differ from "
                    f"bmin.enumerate_shortest_paths",
                )
                return
    report.add("path-count", True, f"{pairs} pairs match k**t (Theorem 1)")
    report.add("path-length", True, "all routes are 2(t+1) channels")
    report.add("delivery-correctness", True, "every route ends at its destination")
    report.add(
        "path-cross-check",
        True,
        "simulated routes == combinatorial shortest paths",
    )


class _Cursor:
    """Just enough routing state to query a direct network."""

    __slots__ = ("cur", "dst")

    def __init__(self, cur: int, dst: int) -> None:
        self.cur = cur
        self.dst = dst


def _check_direct_minimality(
    net: DirectNetwork, report: VerificationReport
) -> None:
    """Every reachable candidate hop strictly reduces the distance.

    Route *enumeration* explodes combinatorially under adaptive
    routing (the 4-ary 3-cube already offers 1680 minimal orderings
    for the worst pair), so minimality and delivery correctness are
    checked on the reachable-state graph instead: linear in states,
    and together they imply every route has exactly
    ``distance(src, dst) + 2`` channels (injection + fabric hops +
    delivery) and ends at the destination's delivery channel.
    """
    topo = net.topo
    states = 0
    for src in range(net.N):
        for dst in range(net.N):
            if src == dst:
                continue
            seen = set()
            stack = [src]
            while stack:
                cur = stack.pop()
                if cur in seen:
                    continue
                seen.add(cur)
                states += 1
                for cand in net.candidates(_Cursor(cur, dst)):
                    if cand.is_delivery:
                        if cur != dst or cand.sink != dst:
                            report.add(
                                "routes-minimal",
                                False,
                                f"({src},{dst}): delivery candidate "
                                f"{cand.label} offered away from the "
                                f"destination (cur={cur})",
                            )
                            return
                        continue
                    nxt = cand.meta[3]
                    if topo.distance(nxt, dst) != topo.distance(cur, dst) - 1:
                        report.add(
                            "routes-minimal",
                            False,
                            f"({src},{dst}): hop {cand.label} from node "
                            f"{cur} is not distance-reducing",
                        )
                        return
                    stack.append(nxt)
    report.add(
        "routes-minimal",
        True,
        f"{states} reachable states: every hop is distance-reducing, "
        "so all routes have distance(src,dst)+2 channels",
    )


def _check_direct_dor_routes(
    net: DirectNetwork, report: VerificationReport
) -> None:
    """DOR is deterministic: one route per pair, minimal length."""
    topo = net.topo
    worst = 0
    for src in range(net.N):
        for dst in range(net.N):
            if src == dst:
                continue
            try:
                routes = enumerate_routes(net, src, dst)
            except CyclicRouteError as exc:
                report.add("dor-unique-route", False, str(exc))
                return
            if len(routes) != 1:
                report.add(
                    "dor-unique-route",
                    False,
                    f"({src},{dst}): {len(routes)} routes under DOR",
                )
                return
            route = routes[0]
            expected = topo.distance(src, dst) + 2
            if len(route) != expected:
                report.add(
                    "dor-unique-route",
                    False,
                    f"({src},{dst}): route of {len(route)} channels, "
                    f"expected distance+2 = {expected}",
                )
                return
            last = route[-1]
            if not last.is_delivery or last.sink != dst:
                report.add(
                    "dor-unique-route",
                    False,
                    f"({src},{dst}): route ends at {last.label}",
                )
                return
            worst = max(worst, expected - 2)
    if worst != topo.diameter:
        report.add(
            "dor-unique-route",
            False,
            f"longest route spans {worst} hops, diameter is "
            f"{topo.diameter}",
        )
        return
    report.add(
        "dor-unique-route",
        True,
        f"one minimal route per pair; longest = diameter = {worst} hops",
    )


def _verify_direct(
    net: DirectNetwork, report: VerificationReport, check_paths: bool
) -> None:
    """Deadlock/routing certification for the direct fabrics.

    Under DOR every lane is an escape lane and the *full* CDG must be
    acyclic.  Under adaptive routing the full CDG is cyclic by design
    (that is what the escape lanes are for), so the certified claims
    are Duato's two conditions: the extended escape sub-CDG is acyclic
    and every reachable state keeps an escape candidate.
    """
    if net.router == "dor":
        cdg = check_acyclic(net)
        report.add("cdg-acyclic", cdg.acyclic, str(cdg))
        if not cdg.acyclic:
            return
    escape = check_escape_acyclic(net)
    report.add("escape-cdg-acyclic", escape.acyclic, str(escape))
    covered, witness = check_escape_coverage(net)
    report.add(
        "escape-coverage",
        covered,
        witness or "every reachable state keeps an escape candidate",
    )
    if not escape.acyclic or not covered:
        return
    if check_paths:
        _check_direct_minimality(net, report)
        if net.router == "dor":
            _check_direct_dor_routes(net, report)


# -- partition properties -----------------------------------------------------


def base_kary_partitions(k: int, n: int) -> Iterator[tuple[int, list[Cube]]]:
    """Every base k-ary m-cube partition, m = 1 .. n-1.

    Yields ``(m, clusters)`` where the ``k**(n-m)`` clusters fix the
    most significant ``n - m`` digits (Definition 6).
    """
    digits = "0123456789ABCDEF"
    for m in range(1, n):
        clusters = []
        for prefix_value in range(k ** (n - m)):
            pattern = []
            v = prefix_value
            for _ in range(n - m):
                pattern.append(digits[v % k])
                v //= k
            pattern.reverse()
            clusters.append(Cube.from_kary("".join(pattern) + "X" * m, k=k))
        yield m, clusters


def _check_min_partitions(
    net: UnidirectionalNetwork, report: VerificationReport
) -> None:
    """Lemma 1 / Theorem 2 (cube) or Theorem 3 (butterfly)."""
    spec = net.spec
    if spec.n < 2:
        report.add("partitioning", True, "n < 2: no nontrivial base partition")
        return
    cube_topology = spec.name == "cube"
    for m, clusters in base_kary_partitions(spec.k, spec.n):
        balanced = all(
            _min_balanced(spec, c) for c in clusters
        )
        disjoint = clusters_are_contention_free(spec, clusters)
        good = balanced and disjoint
        if cube_topology and not good:
            report.add(
                "partition-thm2",
                False,
                f"base {spec.k}-ary {m}-cubes: balanced={balanced}, "
                f"contention-free={disjoint} (Lemma 1/Theorem 2 violated)",
            )
            return
        if not cube_topology and good:
            report.add(
                "partition-thm3",
                False,
                f"butterfly partitioned cleanly at m={m}, contradicting "
                f"Theorem 3",
            )
            return
    if cube_topology:
        report.add(
            "partition-thm2",
            True,
            f"all base k-ary m-cube partitions (m=1..{spec.n - 1}) are "
            "channel-balanced and contention-free",
        )
    else:
        report.add(
            "partition-thm3",
            True,
            "no base partition of the butterfly MIN is clean (Theorem 3)",
        )


def _min_balanced(spec: MINSpec, cluster: Cube) -> bool:
    usage = cluster_channel_usage(spec, cluster)
    return all(len(usage[b]) == cluster.size for b in range(spec.n + 1))


def _check_bmin_partitions(
    net: BidirectionalNetwork, report: VerificationReport
) -> None:
    """Theorem 4: base cubes are line-balanced and contention-free."""
    bmin = net.bmin
    if bmin.n < 2:
        report.add("partition-thm4", True, "n < 2: no nontrivial base partition")
        return
    for m, clusters in base_kary_partitions(bmin.k, bmin.n):
        for cluster in clusters:
            if not _bmin_balanced(bmin, cluster):
                report.add(
                    "partition-thm4",
                    False,
                    f"base {bmin.k}-ary {m}-cube {cluster!r} is not "
                    "line-balanced (Theorem 4 violated)",
                )
                return
        if not bmin_clusters_are_contention_free(bmin, clusters):
            report.add(
                "partition-thm4",
                False,
                f"base {bmin.k}-ary {m}-cube partition is not "
                "contention-free (Theorem 4 violated)",
            )
            return
    report.add(
        "partition-thm4",
        True,
        f"all base k-ary m-cube partitions (m=1..{bmin.n - 1}) are "
        "line-balanced and contention-free",
    )


def _bmin_balanced(bmin: BidirectionalMIN, cluster: Cube) -> bool:
    usage = bmin_cluster_line_usage(bmin, cluster)
    members = cluster.member_list()
    top = max(
        bmin.turn_stage(s, d) for s in members for d in members if s != d
    )
    return all(
        len(usage[b]) == (cluster.size if b <= top else 0)
        for b in range(bmin.n)
    )


# -- configuration-level drivers ---------------------------------------------


def verify_network(
    network: SimNetwork,
    config: Optional[str] = None,
    check_paths: bool = True,
    check_partitions: bool = True,
) -> VerificationReport:
    """Run every applicable static check against a built network."""
    if config is None:
        config = f"{network.kind.value} N={network.N}"
    report = VerificationReport(config)

    if isinstance(network, DirectNetwork):
        # Direct fabrics have their own certification shape: adaptive
        # routing makes the full CDG cyclic by design, so the claims
        # are Duato's escape conditions (plus full-CDG acyclicity and
        # route uniqueness under DOR).  Partition theorems are
        # MIN-specific and do not apply.
        _verify_direct(network, report, check_paths)
        return report

    cdg = check_acyclic(network)
    report.add("cdg-acyclic", cdg.acyclic, str(cdg))
    multi_lane = any(ch.num_lanes > 1 for ch in network.topo_channels)
    if multi_lane:
        lanes = check_acyclic(network, expand_lanes=True)
        report.add("cdg-acyclic-lanes", lanes.acyclic, str(lanes))
    if not cdg.acyclic:
        # Route enumeration may not terminate on a cyclic routing
        # function; the CDG failure is the verdict.
        return report

    if check_paths:
        if isinstance(network, BidirectionalNetwork):
            _check_bmin_paths(network, report)
        elif isinstance(network, UnidirectionalNetwork):
            _check_unidirectional_paths(network, report)

    if check_partitions:
        if isinstance(network, BidirectionalNetwork):
            _check_bmin_partitions(network, report)
        elif isinstance(network, UnidirectionalNetwork):
            _check_min_partitions(network, report)
    return report


def verify_config(
    kind: str | NetworkKind,
    k: int,
    n: int,
    topology: str = "cube",
    dilation: int = 2,
    virtual_channels: int = 2,
    bmin_virtual_channels: int = 1,
    router: str = "dor",
    vlink_slowdown: int = 1,
    check_paths: bool = True,
    check_partitions: bool = True,
) -> VerificationReport:
    """Build one of the supported networks and verify it."""
    network = build_network(
        kind,
        k=k,
        n=n,
        topology=topology,
        dilation=dilation,
        virtual_channels=virtual_channels,
        bmin_virtual_channels=bmin_virtual_channels,
        router=router,
        vlink_slowdown=vlink_slowdown,
    )
    kind_name = network.kind.value
    if isinstance(network, DirectNetwork):
        config = f"{kind_name} {router} k={k} n={n} (N={k**n})"
    else:
        topo = f" {topology}" if network.kind is not NetworkKind.BMIN else ""
        config = f"{kind_name}{topo} k={k} n={n} (N={k**n})"
    return verify_network(
        network,
        config=config,
        check_paths=check_paths,
        check_partitions=check_partitions,
    )


def all_small_configs(
    max_nodes: int = 64,
    kinds: Sequence[str] = ("tmin", "dmin", "vmin", "bmin"),
) -> Iterator[tuple[str, int, int, str]]:
    """Every (kind, k, n, topology) with ``k**n <= max_nodes``.

    Unidirectional kinds are verified on the cube topology (Theorem 2's
    positive case); the TMIN additionally on the butterfly topology so
    Theorem 3's negative case is certified too.
    """
    for k in (2, 4, 8):
        n = 1
        while k**n <= max_nodes:
            for kind in kinds:
                if kind == "bmin":
                    yield (kind, k, n, "cube")
                else:
                    yield (kind, k, n, "cube")
                    if kind == "tmin":
                        yield (kind, k, n, "butterfly")
            n += 1


def all_small_direct_configs(
    max_nodes: int = 64,
    kinds: Sequence[str] = ("mesh3d", "torus3d"),
    routers: Sequence[str] = ("dor", "adaptive"),
) -> Iterator[tuple[str, int, int, str]]:
    """Every small direct ``(kind, k, n, router)`` to certify.

    Three-dimensional geometries with ``k**3 <= max_nodes`` -- k=3 is
    included deliberately: odd radices exercise the tie-free torus
    dateline, even ones the k/2 tie (verify-only; the synthetic
    workloads' cluster math wants power-of-two radices).
    """
    for kind in kinds:
        for k in (2, 3, 4):
            if k**3 <= max_nodes:
                for router in routers:
                    yield (kind, k, 3, router)
