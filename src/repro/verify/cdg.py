"""Channel-dependency-graph construction and acyclicity checking.

Deadlock freedom for wormhole routing is the Dally-Seitz condition:
the *channel dependency graph* (CDG) -- one node per channel, one edge
``c1 -> c2`` whenever some packet may hold ``c1`` while waiting to
acquire ``c2`` -- must be acyclic (Section 3.2.1 argues this for the
BMIN's turnaround routing; the unidirectional MINs are feed-forward and
trivially acyclic).

Rather than trusting a hand-derived edge list, :func:`build_cdg`
derives the CDG *from the simulator itself*: it walks every reachable
routing state of a live :class:`~repro.wormhole.network.SimNetwork`
through the same ``prepare`` / ``candidates`` / ``advance`` interface
the engine uses, so whatever the engine could do at runtime is exactly
what the verifier reasons about.  A routing bug that introduces a cycle
is therefore caught *before* any simulation runs, with a concrete
cycle witness (:func:`find_cycle_witness`) instead of a mid-sweep
:class:`~repro.wormhole.engine.DeadlockError`.

The walker also powers exhaustive route enumeration
(:func:`enumerate_routes`), which :mod:`repro.verify.properties` uses
to machine-check Theorem 1's ``k**t`` path count and the ``2(t+1)`` /
``n+1`` path lengths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

import networkx as nx

from repro.wormhole.channel import PhysChannel
from repro.wormhole.network import SimNetwork


class CyclicRouteError(RuntimeError):
    """Route enumeration revisited a routing state: the routing loops."""


class _Probe:
    """A minimal packet stand-in carrying only routing state.

    Networks only touch the routing attributes their ``prepare`` /
    ``candidates`` / ``advance`` methods set, so a plain attribute bag
    (plus ``src`` / ``dst``) is enough to replay every decision without
    involving the engine, lanes or flit accounting.
    """

    def __init__(self, src: int, dst: int) -> None:
        self.src = src
        self.dst = dst

    def clone(self) -> "_Probe":
        other = _Probe.__new__(_Probe)
        other.__dict__.update(self.__dict__)
        return other

    def state_key(self) -> tuple:
        """Hashable fingerprint of the routing state."""
        items = []
        for name, value in sorted(self.__dict__.items()):
            if isinstance(value, list):
                value = tuple(value)
            items.append((name, value))
        return tuple(items)


@dataclass
class CDGResult:
    """Outcome of a CDG acyclicity check."""

    acyclic: bool
    num_channels: int
    num_dependencies: int
    #: Channel labels forming a dependency cycle (closed: first ==
    #: last), or None when the graph is acyclic.
    cycle: Optional[list[str]] = None
    #: Node granularity: "channel" or "lane".
    granularity: str = "channel"
    lanes_expanded: bool = field(default=False)

    def witness(self) -> str:
        """Human-readable cycle witness (empty string when acyclic)."""
        if self.cycle is None:
            return ""
        return " -> ".join(self.cycle)

    def __str__(self) -> str:
        if self.acyclic:
            return (
                f"CDG acyclic: {self.num_channels} {self.granularity}s, "
                f"{self.num_dependencies} dependencies"
            )
        return (
            f"CDG CYCLIC ({self.num_channels} {self.granularity}s, "
            f"{self.num_dependencies} dependencies); witness: {self.witness()}"
        )


def _pairs(
    network: SimNetwork, pairs: Optional[Iterable[tuple[int, int]]]
) -> Iterator[tuple[int, int]]:
    if pairs is not None:
        yield from pairs
        return
    for src in range(network.N):
        for dst in range(network.N):
            if src != dst:
                yield (src, dst)


def iter_dependencies(
    network: SimNetwork,
    pairs: Optional[Iterable[tuple[int, int]]] = None,
    max_states_per_pair: int = 1_000_000,
) -> Iterable[tuple[PhysChannel, PhysChannel]]:
    """Yield every (held, wanted) channel dependency of the network.

    For each (source, destination) pair, walks all reachable routing
    states: a packet holding channel ``c`` in state ``s`` may wait on
    any channel ``candidates(s)`` returns, and acquiring a candidate
    advances the state.  Dependencies are yielded with repetitions
    (deduplicate at the graph level); the walk itself terminates even
    for cyclic routing functions because visited states are memoized.
    """
    for src, dst in _pairs(network, pairs):
        probe = _Probe(src, dst)
        network.prepare(probe)
        held = network.injection_channel(src)
        stack = [(probe, held)]
        seen: set[tuple] = set()
        while stack:
            state, held = stack.pop()
            key = (held.label, state.state_key())
            if key in seen:
                continue
            seen.add(key)
            if len(seen) > max_states_per_pair:  # pragma: no cover
                raise RuntimeError(
                    f"routing state space of pair ({src}, {dst}) exceeds "
                    f"{max_states_per_pair} states; aborting CDG build"
                )
            if held.is_delivery:
                continue  # the destination consumes: no further waits
            for cand in network.candidates(state):
                yield (held, cand)
                nxt = state.clone()
                network.advance(nxt, cand)
                stack.append((nxt, cand))


def build_cdg(
    network: SimNetwork,
    pairs: Optional[Iterable[tuple[int, int]]] = None,
    expand_lanes: bool = False,
) -> "nx.DiGraph":
    """The network's channel dependency graph as a networkx DiGraph.

    Nodes are channel labels (or ``"label.lane"`` strings with
    ``expand_lanes=True``, one node per virtual lane -- lanes of one
    wire are symmetric under the simulator's any-free-lane allocation,
    so channel- and lane-granularity acyclicity coincide, but the
    expanded graph is what the Dally-Seitz condition literally speaks
    about for virtual-channel networks like the VMIN).
    """
    g = nx.DiGraph(name=f"{network.kind.value}-cdg", N=network.N)
    if expand_lanes:
        for held, cand in iter_dependencies(network, pairs):
            for lane_h in held.lanes:
                for lane_c in cand.lanes:
                    g.add_edge(
                        f"{held.label}.{lane_h.index}",
                        f"{cand.label}.{lane_c.index}",
                    )
    else:
        for held, cand in iter_dependencies(network, pairs):
            g.add_edge(held.label, cand.label)
    return g


def find_cycle_witness(g: "nx.DiGraph") -> Optional[list[str]]:
    """A closed dependency cycle (labels, first == last), or None."""
    try:
        edges = nx.find_cycle(g, orientation="original")
    except nx.NetworkXNoCycle:
        return None
    nodes = [edges[0][0]]
    for edge in edges:
        nodes.append(edge[1])
    return nodes


def check_acyclic(
    network: SimNetwork,
    pairs: Optional[Iterable[tuple[int, int]]] = None,
    expand_lanes: bool = False,
) -> CDGResult:
    """Build the CDG and check the Dally-Seitz condition."""
    g = build_cdg(network, pairs, expand_lanes=expand_lanes)
    cycle = find_cycle_witness(g)
    return CDGResult(
        acyclic=cycle is None,
        num_channels=g.number_of_nodes(),
        num_dependencies=g.number_of_edges(),
        cycle=cycle,
        granularity="lane" if expand_lanes else "channel",
        lanes_expanded=expand_lanes,
    )


def iter_escape_dependencies(
    network: SimNetwork,
    pairs: Optional[Iterable[tuple[int, int]]] = None,
    max_states_per_pair: int = 1_000_000,
) -> Iterable[tuple[str, str]]:
    """Every escape-channel dependency, *including indirect ones*.

    Duato's theorem asks for acyclicity of the extended escape
    sub-CDG: a packet may hold escape channel ``e1``, take any number
    of adaptive hops (wormhole worms release nothing in between), and
    then wait on escape channel ``e2`` -- an *indirect* dependency
    ``e1 -> e2`` that a naive consecutive-hops walk would miss.  The
    walk therefore threads the set of escape channels acquired so far
    through every routing state (a per-pair fixpoint: a state is
    re-expanded when reached with escapes not seen before) and yields
    an edge from every held escape to every escape candidate.

    ``network`` must expose ``is_escape(channel)`` (the direct
    networks do); label pairs are yielded with repetitions.
    """
    is_escape = network.is_escape
    for src, dst in _pairs(network, pairs):
        probe = _Probe(src, dst)
        network.prepare(probe)
        held = network.injection_channel(src)
        stack: list[tuple[_Probe, PhysChannel, frozenset]] = [
            (probe, held, frozenset())
        ]
        best: dict[tuple, frozenset] = {}
        while stack:
            state, held, before = stack.pop()
            key = (held.label, state.state_key())
            prev = best.get(key)
            if prev is not None:
                if before <= prev:
                    continue
                before |= prev
            best[key] = before
            if len(best) > max_states_per_pair:  # pragma: no cover
                raise RuntimeError(
                    f"escape-walk state space of pair ({src}, {dst}) "
                    f"exceeds {max_states_per_pair} states; aborting"
                )
            if held.is_delivery:
                continue
            for cand in network.candidates(state):
                nxt_before = before
                if is_escape(cand):
                    for e in before:
                        yield (e, cand.label)
                    nxt_before = before | {cand.label}
                nxt = state.clone()
                network.advance(nxt, cand)
                stack.append((nxt, cand, nxt_before))


def build_escape_cdg(
    network: SimNetwork,
    pairs: Optional[Iterable[tuple[int, int]]] = None,
) -> "nx.DiGraph":
    """The extended escape sub-CDG (every escape lane is a node)."""
    g = nx.DiGraph(name=f"{network.kind.value}-escape-cdg", N=network.N)
    for ch in network.topo_channels:
        if network.is_escape(ch):
            g.add_node(ch.label)
    for a, b in iter_escape_dependencies(network, pairs):
        g.add_edge(a, b)
    return g


def check_escape_acyclic(
    network: SimNetwork,
    pairs: Optional[Iterable[tuple[int, int]]] = None,
) -> CDGResult:
    """Certify the extended escape sub-CDG acyclic (Duato condition 1).

    For a deterministic router whose channels are all escape channels
    this coincides with :func:`check_acyclic` restricted to fabric
    channels; for an adaptive router it is the half of Duato's theorem
    that the (expectedly cyclic) full CDG cannot give you.  Failure
    carries a concrete cycle witness.
    """
    g = build_escape_cdg(network, pairs)
    cycle = find_cycle_witness(g)
    return CDGResult(
        acyclic=cycle is None,
        num_channels=g.number_of_nodes(),
        num_dependencies=g.number_of_edges(),
        cycle=cycle,
        granularity="escape-channel",
    )


def check_escape_coverage(
    network: SimNetwork,
    pairs: Optional[Iterable[tuple[int, int]]] = None,
    max_states_per_pair: int = 1_000_000,
) -> tuple[bool, str]:
    """Duato condition 2: every routing state keeps an escape open.

    Walks every reachable routing state and demands at least one
    candidate that is an escape channel (or the delivery channel --
    the destination always consumes).  Returns ``(ok, witness)`` where
    the witness pinpoints the first uncovered state.
    """
    is_escape = network.is_escape
    for src, dst in _pairs(network, pairs):
        probe = _Probe(src, dst)
        network.prepare(probe)
        held = network.injection_channel(src)
        stack = [(probe, held)]
        seen: set[tuple] = set()
        while stack:
            state, held = stack.pop()
            key = (held.label, state.state_key())
            if key in seen:
                continue
            seen.add(key)
            if len(seen) > max_states_per_pair:  # pragma: no cover
                raise RuntimeError(
                    f"routing state space of pair ({src}, {dst}) exceeds "
                    f"{max_states_per_pair} states; aborting coverage walk"
                )
            if held.is_delivery:
                continue
            cands = network.candidates(state)
            if not any(c.is_delivery or is_escape(c) for c in cands):
                labels = ", ".join(c.label for c in cands)
                return (
                    False,
                    f"pair ({src}, {dst}): state holding {held.label} "
                    f"offers no escape among [{labels}]",
                )
            for cand in cands:
                nxt = state.clone()
                network.advance(nxt, cand)
                stack.append((nxt, cand))
    return (True, "")


def enumerate_routes(
    network: SimNetwork,
    src: int,
    dst: int,
    max_routes: int = 100_000,
) -> list[list[PhysChannel]]:
    """Every complete channel route the network permits for (src, dst).

    A route starts at the injection channel and ends with a delivery
    channel; adaptive decisions branch.  Raises
    :class:`CyclicRouteError` if a routing state repeats along one
    route (the routing function loops -- use :func:`check_acyclic`
    first), and :class:`RuntimeError` past ``max_routes``.
    """
    probe = _Probe(src, dst)
    network.prepare(probe)
    start = network.injection_channel(src)
    routes: list[list[PhysChannel]] = []

    def walk(state: _Probe, held: PhysChannel, path: list, on_path: set) -> None:
        if held.is_delivery:
            routes.append([ch for ch, _ in path])
            if len(routes) > max_routes:
                raise RuntimeError(
                    f"more than {max_routes} routes for ({src}, {dst})"
                )
            return
        for cand in network.candidates(state):
            nxt = state.clone()
            network.advance(nxt, cand)
            key = (cand.label, nxt.state_key())
            if key in on_path:
                raise CyclicRouteError(
                    f"routing loops for ({src}, {dst}): state at "
                    f"{cand.label} repeats along one route"
                )
            path.append((cand, key))
            on_path.add(key)
            walk(nxt, cand, path, on_path)
            on_path.discard(key)
            path.pop()

    start_key = (start.label, probe.state_key())
    walk(probe, start, [(start, start_key)], {start_key})
    return routes
