"""Negative controls: deliberately deadlock-prone routing variants.

A verifier that never fails is vacuous.  This module wires a BMIN whose
routing *breaks* the turnaround discipline: once a packet is in its
backward (descending) phase, it may re-ascend through a forward channel
at the boundary it just crossed (a BACKWARD -> FORWARD connection,
which Fig. 7 forbids precisely because it closes dependency cycles
``fwd_b -> ... -> bwd_b -> fwd_b``).  The paper's Section 3.2.1 proof
leans on the phase ordering forward < turnaround < backward; dropping
it makes the channel dependency graph cyclic, and the CDG verifier
(:func:`repro.verify.cdg.check_acyclic`) must reject the network with
a concrete cycle witness.

The class is fully functional as a :class:`SimNetwork` -- tests may
even run traffic through it (re-ascent is only *offered*, so a lucky
run can still deliver) -- but ``python -m repro.verify
--negative-control`` certifies that the static checker catches it.

The direct topologies get the same treatment:
:class:`BrokenDatelineTorus` collapses the torus escape scheme to a
single class -- plain DOR on wrapped rings, the textbook torus
deadlock -- so :func:`repro.verify.cdg.check_escape_acyclic` must
reject it with a ring-cycle witness; and :class:`EscapelessNetwork`
drops the escape candidate from every adaptive decision, which
:func:`repro.verify.cdg.check_escape_coverage` must flag.
"""

from __future__ import annotations

from repro.direct.network import DirectNetwork
from repro.direct.topo import DirectTopology
from repro.topology.bmin import BidirectionalMIN
from repro.topology.permutations import from_digits, to_digits
from repro.wormhole.channel import PhysChannel
from repro.wormhole.network import BidirectionalNetwork
from repro.wormhole.packet import Packet


class ReascendingBidirectionalNetwork(BidirectionalNetwork):
    """BMIN variant allowing BACKWARD -> FORWARD re-ascent (cyclic!).

    During the down phase at stage ``b - 1`` (after crossing boundary
    ``b`` backward), the header may -- in addition to the legal
    backward hop -- re-acquire any forward channel of boundary ``b``
    below its turn stage, restarting the up phase.  This invalidates
    the acyclic phase ordering of Section 3.2.1 and seeds cycles such
    as ``fwd1[x] -> bwd1[y] -> fwd1[x]`` in the channel dependency
    graph.
    """

    def candidates(self, packet: Packet) -> list[PhysChannel]:
        legal = super().candidates(packet)
        if packet.bmin_going_up:
            return legal
        b = packet.bmin_boundary
        if b == 0 or b > packet.bmin_turn:
            return legal
        # Illegal re-ascent: from the stage-(b-1) switch, go up again
        # through any forward channel of boundary b.
        k, n = self.bmin.k, self.bmin.n
        digits = list(to_digits(packet.bmin_line, k, n))
        extra = []
        for i in range(k):
            digits[b - 1] = i
            extra.append(self.fwd[(b, from_digits(digits, k))])
        return legal + extra

    def advance(self, packet: Packet, channel: PhysChannel) -> None:
        super().advance(packet, channel)
        direction, _boundary, _line = channel.meta
        if direction == "fwd":
            # Re-ascending flips the packet back into its up phase.
            packet.bmin_going_up = True


def build_negative_control(k: int = 2, n: int = 3) -> ReascendingBidirectionalNetwork:
    """The canonical cyclic-routing fixture for verifier tests."""
    return ReascendingBidirectionalNetwork(BidirectionalMIN(k, n))


class BrokenDatelineTorus(DirectNetwork):
    """Torus whose escape lanes ignore the dateline (cyclic!).

    Every escape hop uses class 0, i.e. plain dimension-order routing
    on wrapped rings -- the textbook torus deadlock.  Note the cycle
    only closes for even radices k >= 4: a packet contributes a
    ring dependency per *consecutive* hop pair, and minimal routes
    take at most floor(k/2) hops per dimension, so k = 2 and k = 3
    tori are deadlock-free even without a dateline (too short to
    chain).  The verifier must find the k/2-hop chains closing the
    ring at k = 4.
    """

    def _escape_class(self, c: int, d: int, sign: int) -> int:
        return 0


class EscapelessNetwork(DirectNetwork):
    """Adaptive router with no escape fallback (uncovered states!).

    Wherever an adaptive candidate exists, the escape lane is dropped
    from the decision -- Duato's coverage condition fails on the very
    first blocked header, and
    :func:`repro.verify.cdg.check_escape_coverage` must name such a
    state.
    """

    def _build_candidates(self, cur: int, dst: int) -> list[PhysChannel]:
        full = super()._build_candidates(cur, dst)
        adaptive_only = [
            ch for ch in full if ch.meta is not None and ch.meta[4] == "adp"
        ]
        return adaptive_only or full


def build_direct_negative_control(
    k: int = 4, n: int = 2
) -> BrokenDatelineTorus:
    """The canonical broken-escape fixture for the direct verifier."""
    return BrokenDatelineTorus(
        DirectTopology(k=k, n=n, wrap=True), router="adaptive"
    )
