"""AST lint rules for simulator hazards.

Generic linters don't know what breaks a discrete-event simulation.
These rules encode the repo's simulation discipline (see
``docs/model.md``) as custom, codemod-free AST checks:

``RPV001`` **raw-random**
    Direct use of the :mod:`random` module instead of a seeded
    :class:`repro.sim.rng.RandomStream`.  Unseeded draws destroy run
    reproducibility and the paired-stream variance reduction the
    paper's comparisons rely on.

``RPV002`` **wallclock-time**
    ``time.time()`` / ``time.perf_counter()`` / ``time.monotonic()``
    inside simulation code.  Sim logic must read ``env.now``; wall
    clocks belong only in harness/benchmark reporting (suppress there).

``RPV003`` **float-eq-simtime**
    ``==`` / ``!=`` comparison against simulation time (``env.now`` or
    a ``now``-named variable).  Sim time is a float; exact equality is
    a latent off-by-epsilon bug -- compare with ``<=`` windows.

``RPV004`` **mutable-default**
    Mutable default argument (list/dict/set literal or constructor) in
    a function or dataclass field.  Shared across calls/processes;
    state leaks between simulation runs.

``RPV005`` **hold-without-release**
    A generator process ``yield``-ing a ``request()``/``acquire()``
    without any ``release`` call or ``with`` block in the same
    function.  The slot leaks when the process ends or is interrupted.

``RPV006`` **unguarded-hot-publish**
    An event-bus ``publish_*`` call inside a ``for``/``while`` loop
    with no enclosing guard on the bus's fast-path flags.  Hot-loop
    publish sites must sit under ``if bus.enabled:`` / ``if bus.hot:``
    or the hoisted ``obs = bus if bus.hot else None`` +
    ``if obs is not None:`` pattern (see ``docs/observability.md``),
    otherwise every simulated flit pays the publish cost even when no
    sink is attached.

``RPV007``-``RPV010`` are the fork-/signal-safety family (lock before
fork, unsafe signal handlers, raw shared-array subscripts, fork under
lock), implemented in :mod:`repro.verify.flow.forksafety` and merged
into this catalog.

Suppression: append ``# lint-sim: ignore`` (all rules) or
``# lint-sim: ignore[RPV001,RPV005]`` to the offending line; a file
containing ``# lint-sim: skip-file`` is skipped entirely.

Run with ``python tools/lint_sim.py [paths...]`` (CI's ``lint`` job) or
import :func:`lint_paths` / :func:`lint_source` from tests.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Optional

from repro.verify.flow.forksafety import FORK_RULES, scan_fork_safety

RULES: dict[str, str] = {
    "RPV001": "use repro.sim.rng.RandomStream, not the raw random module",
    "RPV002": "use env.now, not wall-clock time, inside simulation code",
    "RPV003": "never compare simulation time with == / != (float epsilon)",
    "RPV004": "mutable default argument shares state across calls",
    "RPV005": "yielded hold (request/acquire) with no release path",
    "RPV006": "bus publish inside a loop without an enabled/hot guard",
    # Fork-/signal-safety family, implemented in
    # repro.verify.flow.forksafety (see its module docstring).
    **FORK_RULES,
}

_SKIP_FILE = "lint-sim: skip-file"
_IGNORE_RE = re.compile(r"lint-sim:\s*ignore(?:\[([A-Z0-9,\s]+)\])?")


@dataclass(frozen=True)
class LintViolation:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def _suppressions(source: str) -> dict[int, Optional[set[str]]]:
    """Per-line suppressions: line -> None (all rules) or a rule set."""
    table: dict[int, Optional[set[str]]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        if "lint-sim" not in text:
            continue
        m = _IGNORE_RE.search(text)
        if not m:
            continue
        if m.group(1) is None:
            table[lineno] = None
        else:
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            if lineno in table and table[lineno] is None:
                continue  # bare `ignore` already suppresses everything
            table[lineno] = table.get(lineno, set()) | rules
    return table


_WALLCLOCK_FNS = {"time", "perf_counter", "monotonic", "process_time"}
_MUTABLE_CTORS = {"list", "dict", "set", "defaultdict", "deque", "Counter"}
_TIMEY_NAMES = {"now", "sim_time", "simtime"}
_HOLD_METHODS = {"request", "acquire"}


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        fn = node.func
        name = fn.id if isinstance(fn, ast.Name) else (
            fn.attr if isinstance(fn, ast.Attribute) else None
        )
        return name in _MUTABLE_CTORS
    return False


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = target.id if isinstance(target, ast.Name) else (
            target.attr if isinstance(target, ast.Attribute) else None
        )
        if name == "dataclass":
            return True
    return False


def _local_walk(fn: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _mentions_sim_time(node: ast.expr) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr == "now":
            return True
        if isinstance(sub, ast.Name) and sub.id in _TIMEY_NAMES:
            return True
    return False


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.random_names: set[str] = set()  # local aliases of `random`
        self.time_names: set[str] = set()  # local aliases of `time`
        self.violations: list[LintViolation] = []

    # -- imports feed RPV001/RPV002 --------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random":
                self.random_names.add(alias.asname or "random")
            if alias.name == "time":
                self.time_names.add(alias.asname or "time")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random" and node.level == 0:
            for alias in node.names:
                self._add(
                    node.lineno,
                    node.col_offset,
                    "RPV001",
                    f"from random import {alias.name}: "
                    + RULES["RPV001"],
                )
        if node.module == "time" and node.level == 0:
            for alias in node.names:
                if alias.name in _WALLCLOCK_FNS:
                    self.time_names.add(alias.asname or alias.name)
        self.generic_visit(node)

    # -- calls: RPV001, RPV002 --------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        fn = node.func
        if isinstance(fn, ast.Attribute) and isinstance(fn.value, ast.Name):
            base = fn.value.id
            if base in self.random_names:
                self._add(
                    node.lineno,
                    node.col_offset,
                    "RPV001",
                    f"random.{fn.attr}(): " + RULES["RPV001"],
                )
            if base in self.time_names and fn.attr in _WALLCLOCK_FNS:
                self._add(
                    node.lineno,
                    node.col_offset,
                    "RPV002",
                    f"time.{fn.attr}(): " + RULES["RPV002"],
                )
        elif isinstance(fn, ast.Name) and fn.id in self.time_names:
            self._add(
                node.lineno,
                node.col_offset,
                "RPV002",
                f"{fn.id}(): " + RULES["RPV002"],
            )
        self.generic_visit(node)

    # -- comparisons: RPV003 -----------------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        has_eq = any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops)
        if has_eq:
            operands = [node.left, *node.comparators]
            if any(_mentions_sim_time(o) for o in operands):
                self._add(
                    node.lineno,
                    node.col_offset,
                    "RPV003",
                    RULES["RPV003"],
                )
        self.generic_visit(node)

    # -- defs: RPV004, RPV005 ---------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self._check_hold_release(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if _is_dataclass_decorated(node):
            for stmt in node.body:
                value = None
                if isinstance(stmt, ast.AnnAssign):
                    value = stmt.value
                elif isinstance(stmt, ast.Assign):
                    value = stmt.value
                if value is not None and _is_mutable_default(value):
                    # dataclasses reject list/dict/set at runtime but
                    # happily share e.g. a deque() or a comprehension.
                    self._add(
                        stmt.lineno,
                        stmt.col_offset,
                        "RPV004",
                        "dataclass field default: " + RULES["RPV004"]
                        + " (use field(default_factory=...))",
                    )
        self.generic_visit(node)

    def _check_defaults(
        self, node: "ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda"
    ) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_default(default):
                self._add(
                    default.lineno,
                    default.col_offset,
                    "RPV004",
                    f"in {node.name}(): " + RULES["RPV004"],
                )

    def _check_hold_release(self, node: ast.FunctionDef) -> None:
        # Only generator functions are sim processes; scan this
        # function's own body, not nested defs.
        body = list(_local_walk(node))
        is_gen = any(isinstance(sub, (ast.Yield, ast.YieldFrom)) for sub in body)
        if not is_gen:
            return
        has_release = False
        with_held: set[int] = set()  # id() of calls inside with-items
        for sub in body:
            if isinstance(sub, ast.Attribute) and sub.attr.startswith("release"):
                has_release = True
            if isinstance(sub, (ast.With, ast.AsyncWith)):
                for item in sub.items:
                    for inner in ast.walk(item.context_expr):
                        with_held.add(id(inner))
        if has_release:
            return
        for sub in body:
            if not isinstance(sub, ast.Yield) or sub.value is None:
                continue
            call = sub.value
            if (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr in _HOLD_METHODS
                and id(call) not in with_held
            ):
                self._add(
                    sub.lineno,
                    sub.col_offset,
                    "RPV005",
                    f"yield ...{call.func.attr}() in {node.name}(): "
                    + RULES["RPV005"],
                )

    def _add(self, line: int, col: int, rule: str, message: str) -> None:
        self.violations.append(
            LintViolation(self.path, line, col, rule, message)
        )


# -- RPV006: unguarded publish in a hot loop --------------------------------

_GUARD_FLAGS = {"enabled", "hot"}


def _is_bus_guard(test: ast.expr) -> bool:
    """True for conditions that gate on the bus fast path: any mention
    of an ``enabled``/``hot`` flag, or an ``is (not) None`` test on the
    hoisted sink reference (``if obs is not None:``)."""
    for sub in ast.walk(test):
        if isinstance(sub, ast.Attribute) and sub.attr in _GUARD_FLAGS:
            return True
        if isinstance(sub, ast.Name) and sub.id in _GUARD_FLAGS:
            return True
        if isinstance(sub, ast.Compare) and any(
            isinstance(op, (ast.Is, ast.IsNot)) for op in sub.ops
        ):
            operands = [sub.left, *sub.comparators]
            if any(
                isinstance(o, ast.Constant) and o.value is None
                for o in operands
            ):
                return True
    return False


def _is_publish_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    fn = node.func
    if isinstance(fn, ast.Attribute):
        name = fn.attr
    elif isinstance(fn, ast.Name):
        name = fn.id
    else:
        return False
    return name == "publish" or name.startswith("publish_")


class _PublishGuardScanner:
    """Flag ``publish_*`` calls lexically inside a loop body with no
    enclosing enabled/hot/``is not None`` guard (rule RPV006)."""

    def __init__(self, visitor: _Visitor) -> None:
        self.visitor = visitor

    def scan(self, node: ast.AST, in_loop: bool = False, guarded: bool = False) -> None:
        if _is_publish_call(node) and in_loop and not guarded:
            fn = node.func
            name = fn.attr if isinstance(fn, ast.Attribute) else fn.id
            self.visitor._add(
                node.lineno,
                node.col_offset,
                "RPV006",
                f"{name}() in a loop: " + RULES["RPV006"],
            )
        if isinstance(node, ast.If):
            inner = guarded or _is_bus_guard(node.test)
            self.scan(node.test, in_loop, guarded)
            for stmt in node.body:
                self.scan(stmt, in_loop, inner)
            for stmt in node.orelse:
                self.scan(stmt, in_loop, guarded)
        elif isinstance(node, ast.IfExp):
            inner = guarded or _is_bus_guard(node.test)
            self.scan(node.test, in_loop, guarded)
            self.scan(node.body, in_loop, inner)
            self.scan(node.orelse, in_loop, guarded)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self.scan(node.target, in_loop, guarded)
            self.scan(node.iter, in_loop, guarded)
            for stmt in node.body:
                self.scan(stmt, True, guarded)
            for stmt in node.orelse:
                self.scan(stmt, in_loop, guarded)
        elif isinstance(node, ast.While):
            self.scan(node.test, in_loop, guarded)
            for stmt in node.body:
                self.scan(stmt, True, guarded)
            for stmt in node.orelse:
                self.scan(stmt, in_loop, guarded)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # New scope: an enclosing loop does not make this body hot,
            # and any outer guard does not protect it either.
            for child in ast.iter_child_nodes(node):
                self.scan(child, False, False)
        else:
            for child in ast.iter_child_nodes(node):
                self.scan(child, in_loop, guarded)


def lint_source(source: str, path: str = "<string>") -> list[LintViolation]:
    """Lint one source text; returns the unsuppressed violations."""
    if _SKIP_FILE in source:
        return []
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            LintViolation(
                path,
                exc.lineno or 0,
                exc.offset or 0,
                "RPV000",
                f"syntax error: {exc.msg}",
            )
        ]
    visitor = _Visitor(path)
    visitor.visit(tree)
    _PublishGuardScanner(visitor).scan(tree)
    scan_fork_safety(tree, visitor._add)
    table = _suppressions(source)
    kept = []
    for v in visitor.violations:
        if v.line in table:
            rules = table[v.line]
            if rules is None or v.rule in rules:
                continue
        kept.append(v)
    kept.sort(key=lambda v: (v.line, v.col, v.rule))
    return kept


def lint_file(path: Path) -> list[LintViolation]:
    """Lint one file."""
    return lint_source(path.read_text(encoding="utf-8"), str(path))


def lint_paths(paths: Iterable[Path]) -> list[LintViolation]:
    """Lint every ``*.py`` file under the given files/directories."""
    out: list[LintViolation] = []
    for root in paths:
        root = Path(root)
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for f in files:
            out.extend(lint_file(f))
    return out
