"""Opt-in runtime sanitizer for the wormhole engine.

Set ``REPRO_SANITIZE=1`` (any value other than empty/``0``) and every
:class:`~repro.wormhole.engine.WormholeEngine` self-checks the
simulator's core invariants after each cycle:

* **buffer occupancy bounds** -- each switch-input buffer holds 0 or 1
  flits (the 1-flit buffers of Section 2.2); delivery lanes buffer
  nothing (the node consumes instantly);
* **ownership accounting** -- ``PhysChannel.owned_count`` matches the
  lanes actually owned (the hot path's O(1) cache never drifts);
* **flit conservation** -- for every in-flight worm, flits injected ==
  flits delivered + flits sitting in buffers along its chain, with
  every per-hop gap in {0, 1};
* **acquire/release pairing** -- a lane is only released once its
  owner's tail flit crossed the wire (``sent == length``), except
  during an explicit abort (fault recovery), which announces itself.

The checks are wired into the engine (see
``WormholeEngine.step_cycle`` / ``Lane.release``) but cost *nothing*
when disabled: the engine holds ``sanitizer = None`` and the channel
layer checks one module flag per release.  CI runs the whole tier-1
suite under ``REPRO_SANITIZE=1`` (the ``sanitize`` job).

``REPRO_SANITIZE_EVERY=N`` (default 1) thins the per-cycle sweep to
every N-th cycle for long soak runs; the release-pairing check always
runs.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.wormhole.channel import Lane
    from repro.wormhole.engine import WormholeEngine
    from repro.wormhole.network import SimNetwork


class SanitizerError(AssertionError):
    """An engine invariant was violated (simulator bug or corruption)."""


def sanitize_enabled() -> bool:
    """True when ``REPRO_SANITIZE`` requests runtime sanitizing."""
    return os.environ.get("REPRO_SANITIZE", "") not in ("", "0")


def check_interval() -> int:
    """Per-cycle sweep thinning factor (``REPRO_SANITIZE_EVERY``)."""
    try:
        return max(1, int(os.environ.get("REPRO_SANITIZE_EVERY", "1")))
    except ValueError:
        return 1


class Sanitizer:
    """Per-engine invariant checker (created when sanitizing is on)."""

    def __init__(self, network: "SimNetwork") -> None:
        self.network = network
        self.every = check_interval()
        self.cycles_checked = 0
        self.violations = 0  # incremented before raising, for forensics
        # The release hook is module-global (one observer at a time),
        # so remember which channels are *ours*: releases on channels
        # outside this network (unit-test fixtures, other engines) are
        # not this sanitizer's business.
        self._channel_ids = {id(ch) for ch in network.topo_channels}

    # -- release pairing (called from the channel layer) -----------------

    def on_release(self, lane: "Lane") -> None:
        """Validate one lane release (tail crossed, or explicit abort)."""
        if id(lane.channel) not in self._channel_ids:
            return  # not a channel of this sanitizer's network
        owner = lane.owner
        if owner is None:  # releasing a free lane: always a bug
            self._fail(f"release of unowned lane {lane!r}")
        if getattr(owner, "_sanitize_aborting", False):
            return  # fault recovery flushes mid-worm; exempt
        if lane.sent != owner.length:
            self._fail(
                f"early release of {lane!r}: sent {lane.sent} of "
                f"{owner.length} flits (acquire/release pairing broken)"
            )

    # -- per-cycle sweep ---------------------------------------------------

    def check_cycle(self, engine: "WormholeEngine") -> None:
        """Assert all invariants; raise :class:`SanitizerError` on drift."""
        if engine.cycles_run % self.every:
            return
        self.cycles_checked += 1
        self._check_channels()
        self._check_packets(engine)
        if engine.fast:
            self._check_active_list(engine)
            if engine._worm_mode and not engine.bus.hot:
                self._check_moving(engine)

    def _check_active_list(self, engine: "WormholeEngine") -> None:
        """Fast-path invariants: active list and blocked-header caches.

        * every channel with an owned lane is on the active list (a
          miss would silently freeze a worm);
        * the list is sorted by ``topo_order`` with no duplicates (the
          advance order must match the reference scan's);
        * a header with a cached blocked decision at the current fault
          epoch really has no free, non-faulty-consistent lane (the
          cache must never hide a grantable channel).
        """
        from repro.wormhole import channel as channel_mod

        listed = {id(ch) for ch in engine._active}
        if len(listed) != len(engine._active):
            self._fail("fast path: active list holds duplicate channels")
        orders = [ch.topo_order for ch in engine._active]
        if orders != sorted(orders):
            self._fail(f"fast path: active list out of topo order: {orders}")
        for ch in self.network.topo_channels:
            if ch.owned_count > 0 and id(ch) not in listed:
                self._fail(
                    f"{ch.label}: owned_count={ch.owned_count} but the "
                    "channel is missing from the fast path's active list"
                )
            if (id(ch) in listed) != ch.in_active:
                self._fail(
                    f"{ch.label}: in_active={ch.in_active} disagrees with "
                    "actual active-list membership"
                )
        epoch = channel_mod.fault_epoch
        for p in engine._pending_route:
            usable = p._blk_usable
            if usable is None or p._blk_epoch != epoch:
                continue
            for ch in usable:
                if ch.faulty:
                    self._fail(
                        f"pkt#{p.pid}: cached usable channel {ch.label} is "
                        "faulty at the cached fault epoch"
                    )
                for lane in ch.lanes:
                    if lane.owner is None:
                        self._fail(
                            f"pkt#{p.pid}: cached as blocked but "
                            f"{ch.label}.{lane.index} is free"
                        )

    def _check_moving(self, engine: "WormholeEngine") -> None:
        """Per-worm Phase B invariants: nothing sleeps that could move.

        A worm dropped from the moving list must be genuinely stalled:
        none of its owned lanes may satisfy the ready condition (a
        ready lane on a sleeping worm would freeze its flits forever).
        The list flag must also agree with actual list membership for
        every in-flight worm.
        """
        from repro.wormhole.packet import PacketState

        listed = {id(p) for p in engine._moving}
        for p in engine.in_flight_packets():
            if p.state is not PacketState.ACTIVE:
                continue
            if p._moving != (id(p) in listed):
                self._fail(
                    f"pkt#{p.pid}: _moving={p._moving} disagrees with "
                    "actual worm-list membership"
                )
            if p._moving:
                continue
            lanes = p.lanes
            for i in range(len(lanes) - 1, -1, -1):
                lane = lanes[i]
                if lane.owner is not p:
                    break
                if (
                    lane.sent >= p.length
                    or (i > 0 and lanes[i - 1].buf == 0)
                    or (lane.buf != 0 and not lane.channel.is_delivery)
                ):
                    continue
                self._fail(
                    f"pkt#{p.pid}: off the moving list but "
                    f"{lane.channel.label} is ready to move a flit"
                )

    def _check_channels(self) -> None:
        for ch in self.network.topo_channels:
            owned = sum(1 for lane in ch.lanes if lane.owner is not None)
            if owned != ch.owned_count:
                self._fail(
                    f"{ch.label}: owned_count={ch.owned_count} but "
                    f"{owned} lanes are owned"
                )
            for lane in ch.lanes:
                if ch.is_delivery:
                    if lane.buf != 0:
                        self._fail(
                            f"{lane!r}: delivery lanes have no buffer, "
                            f"yet buf={lane.buf}"
                        )
                elif not 0 <= lane.buf <= 1:
                    self._fail(
                        f"{lane!r}: 1-flit buffer holds {lane.buf} flits"
                    )
                if lane.owner is not None and not (
                    0 <= lane.sent <= lane.owner.length
                ):
                    self._fail(
                        f"{lane!r}: sent={lane.sent} outside "
                        f"[0, {lane.owner.length}]"
                    )

    def _check_packets(self, engine: "WormholeEngine") -> None:
        for p in engine.in_flight_packets():
            if not p.lanes:
                continue  # header still waiting for its first grant
            # A released lane passed the pairing check, so all length
            # flits crossed it; an owned lane has crossed lane.sent.
            eff = [
                lane.sent if lane.owner is p else p.length for lane in p.lanes
            ]
            for i in range(len(eff) - 1):
                gap = eff[i] - eff[i + 1]
                if gap < 0:
                    self._fail(
                        f"pkt#{p.pid}: downstream lane "
                        f"{p.lanes[i + 1].channel.label} ahead of upstream "
                        f"({eff[i + 1]} > {eff[i]} flits) -- conservation "
                        "broken"
                    )
                if not p.lanes[i].channel.is_delivery and gap > 1:
                    self._fail(
                        f"pkt#{p.pid}: {gap} flits buffered after "
                        f"{p.lanes[i].channel.label} (1-flit buffers)"
                    )
            last = p.lanes[-1]
            if last.channel.is_delivery and last.owner is p:
                if p.delivered_flits != last.sent:
                    self._fail(
                        f"pkt#{p.pid}: delivered_flits={p.delivered_flits} "
                        f"but delivery lane streamed {last.sent}"
                    )
            elif p.delivered_flits not in (0, p.length):
                self._fail(
                    f"pkt#{p.pid}: {p.delivered_flits} flits delivered "
                    "without holding a delivery lane"
                )

    def _fail(self, message: str) -> None:
        self.violations += 1
        raise SanitizerError(f"REPRO_SANITIZE: {message}")


def maybe_sanitizer(network: "SimNetwork") -> "Sanitizer | None":
    """A :class:`Sanitizer` when ``REPRO_SANITIZE`` is set, else None."""
    return Sanitizer(network) if sanitize_enabled() else None
