"""Fork- and signal-safety lint rules (RPV007-RPV010).

The sweep service's supervisor (:mod:`repro.serve.supervisor`) manages
raw ``multiprocessing`` workers, shared heartbeat arrays and signal
handlers -- a combination with hazards no generic linter models:

``RPV007`` **lock-before-fork**
    A ``threading`` primitive (Thread/Lock/RLock/Condition/Semaphore/
    Event/Barrier) constructed *before* a ``Process.start()`` in the
    same function flow (or at module level of a module that forks).
    Under the ``fork`` start method the child inherits the lock state
    of every thread at fork instant -- a lock held by a non-forked
    thread stays locked forever in the child.

``RPV008`` **unsafe-signal-handler**
    A handler registered via ``signal.signal`` doing more than
    flag-setting: Python-level handlers run between bytecodes, but
    they still interrupt arbitrary code, so anything that takes a lock
    (``print``/ ``logging`` buffer locks, queue locks) can deadlock
    the process the handler was meant to wind down.  Allowed inside a
    handler: attribute/flag assignment, ``os.write``/``os.kill``,
    ``signal.*``, ``sys.exit``, raising an exception (the SIGALRM
    timeout idiom), and calls to methods named ``request_stop`` /
    ``stop`` / ``set`` (the repo's documented signal-safe wind-down
    surface).

``RPV009`` **raw-shared-array**
    Direct subscripting of a ``multiprocessing`` ``RawArray`` /
    ``Array`` binding.  Shared heartbeat arrays must be touched only
    through :class:`repro.obs.progress.HeartbeatSlot` accessors so the
    liveness protocol (never-beaten sentinel, monotonic source, age
    semantics) lives in exactly one place.

``RPV010`` **fork-under-lock**
    ``Process.start()`` (or ``os.fork()``) inside a ``with <lock>:``
    block.  The child forks with the lock held; any code path in the
    child that touches the same lock deadlocks.

These rules are part of the standard :mod:`repro.verify.lint` catalog
(``python tools/lint_sim.py``); suppression and ``--json`` output work
exactly as for RPV001-RPV006.
"""

from __future__ import annotations

import ast
from typing import Callable, Iterator, List, Optional, Set, Tuple

#: Rule catalogue fragment merged into :data:`repro.verify.lint.RULES`.
FORK_RULES = {
    "RPV007": (
        "threading primitive created before Process.start() in the same "
        "flow (fork inherits wedged lock state)"
    ),
    "RPV008": (
        "signal handler does non-signal-safe work (only flag sets, "
        "os.write/os.kill, signal.*, sys.exit, request_stop/stop/set "
        "calls are allowed)"
    ),
    "RPV009": (
        "raw subscript on a multiprocessing shared array; go through "
        "HeartbeatSlot accessors"
    ),
    "RPV010": (
        "process forked while holding a lock (child inherits the held "
        "lock and deadlocks)"
    ),
}

_THREADING_PRIMITIVES = {
    "Thread", "Lock", "RLock", "Condition", "Semaphore",
    "BoundedSemaphore", "Event", "Barrier", "Timer",
}
_SHARED_ARRAY_CTORS = {"RawArray", "Array", "RawValue", "Value"}
_SAFE_HANDLER_DOTTED = {
    "os.write", "os.kill", "os._exit", "os.getpid", "sys.exit",
}
_SAFE_HANDLER_METHODS = {"request_stop", "stop", "set", "fileno", "encode"}

AddFn = Callable[[int, int, str, str], None]


def _local_walk(fn: ast.AST) -> Iterator[ast.AST]:
    """Walk a scope without descending into nested function defs."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _call_name(call: ast.Call) -> Optional[str]:
    """``a.b.c(...)`` -> "a.b.c", ``f(...)`` -> "f", else None."""
    fn = call.func
    parts: List[str] = []
    while isinstance(fn, ast.Attribute):
        parts.append(fn.attr)
        fn = fn.value
    if isinstance(fn, ast.Name):
        parts.append(fn.id)
        return ".".join(reversed(parts))
    return None


def _is_threading_primitive(call: ast.Call, from_imports: Set[str]) -> bool:
    name = _call_name(call)
    if name is None:
        return False
    parts = name.split(".")
    if len(parts) >= 2 and parts[0] == "threading":
        return parts[-1] in _THREADING_PRIMITIVES
    return len(parts) == 1 and parts[0] in from_imports


def _is_process_ctor(call: ast.Call) -> bool:
    name = _call_name(call)
    return name is not None and name.split(".")[-1] == "Process"


def _is_shared_array_ctor(call: ast.Call) -> bool:
    name = _call_name(call)
    return name is not None and name.split(".")[-1] in _SHARED_ARRAY_CTORS


def _lockish_context(expr: ast.expr) -> bool:
    """Heuristic: the with-item guards a lock (name mentions lock/mutex
    /semaphore/condition, or it constructs a threading primitive)."""
    for sub in ast.walk(expr):
        name = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        elif isinstance(sub, ast.Call):
            if _is_threading_primitive(sub, _THREADING_PRIMITIVES):
                return True
            continue
        if name is not None and any(
            tok in name.lower() for tok in ("lock", "mutex", "semaphore", "cond")
        ):
            return True
    return False


class ForkSafetyScanner:
    """Scan one module tree; violations go through the ``add`` callback
    as ``add(line, col, rule, message)``."""

    def __init__(self, tree: ast.Module, add: AddFn) -> None:
        self.tree = tree
        self.add = add
        #: names from `from threading import X`.
        self.threading_from: Set[str] = set()
        #: names from `from signal import signal` style imports.
        self.signal_aliases: Set[str] = {"signal"}
        self._collect_imports()

    def _collect_imports(self) -> None:
        for stmt in ast.walk(self.tree):
            if isinstance(stmt, ast.ImportFrom) and stmt.module == "threading":
                for alias in stmt.names:
                    if alias.name in _THREADING_PRIMITIVES:
                        self.threading_from.add(alias.asname or alias.name)
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    if alias.name == "signal" and alias.asname:
                        self.signal_aliases.add(alias.asname)

    # ------------------------------------------------------------------ run

    def scan(self) -> None:
        module_forks = self._module_forks()
        self._scan_scope(self.tree.body, toplevel=True, module_forks=module_forks)
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._scan_function(node)
        self._scan_handlers()
        self._scan_shared_arrays()

    def _module_forks(self) -> bool:
        return any(
            isinstance(node, ast.Call) and _is_process_ctor(node)
            for node in ast.walk(self.tree)
        )

    # ---------------------------------------------------------- RPV007/010

    def _scan_scope(
        self, body: List[ast.stmt], toplevel: bool, module_forks: bool
    ) -> None:
        """Module top level: creating threading primitives in a module
        that forks processes is flagged (RPV007)."""
        if not (toplevel and module_forks):
            return
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Call) and _is_threading_primitive(
                    sub, self.threading_from
                ):
                    self.add(
                        sub.lineno, sub.col_offset, "RPV007",
                        "module-level threading primitive in a forking "
                        "module: " + FORK_RULES["RPV007"],
                    )

    def _scan_function(self, fn: ast.AST) -> None:
        """Flow order inside one function: primitive-then-start is
        RPV007; start inside a lock `with` is RPV010."""
        process_vars: Set[str] = set()
        primitives: List[Tuple[int, int]] = []   # (line, col)
        starts: List[int] = []                   # lines of process starts

        # First pass: find process-typed locals and all events in line order.
        for sub in _local_walk(fn):
            if isinstance(sub, ast.Assign) and isinstance(sub.value, ast.Call):
                if _is_process_ctor(sub.value):
                    for tgt in sub.targets:
                        if isinstance(tgt, ast.Name):
                            process_vars.add(tgt.id)

        def is_process_start(call: ast.Call) -> bool:
            f = call.func
            if not (isinstance(f, ast.Attribute) and f.attr in ("start", "fork")):
                return False
            if isinstance(f.value, ast.Call) and _is_process_ctor(f.value):
                return True   # Process(...).start()
            if isinstance(f.value, ast.Name):
                if f.value.id in process_vars:
                    return True
                if f.attr == "fork" and f.value.id == "os":
                    return True
            if (
                isinstance(f.value, ast.Attribute)
                and f.value.attr in ("proc", "process")
            ):
                return True   # worker.proc.start()
            return False

        for sub in _local_walk(fn):
            if isinstance(sub, ast.Call):
                if _is_threading_primitive(sub, self.threading_from):
                    primitives.append((sub.lineno, sub.col_offset))
                elif is_process_start(sub):
                    starts.append(sub.lineno)

        if starts:
            first_start = min(starts)
            for line, col in primitives:
                if line < first_start:
                    self.add(
                        line, col, "RPV007",
                        FORK_RULES["RPV007"],
                    )

        # RPV010: process start lexically inside a lock-guarded `with`.
        self._scan_fork_under_lock(fn, is_process_start, under_lock=False)

    def _scan_fork_under_lock(
        self, node: ast.AST, is_start: Callable, under_lock: bool
    ) -> None:
        if isinstance(node, ast.Call) and under_lock and is_start(node):
            self.add(
                node.lineno, node.col_offset, "RPV010",
                FORK_RULES["RPV010"],
            )
        if isinstance(node, (ast.With, ast.AsyncWith)):
            locked = under_lock or any(
                _lockish_context(item.context_expr) for item in node.items
            )
            for item in node.items:
                self._scan_fork_under_lock(item, is_start, under_lock)
            for stmt in node.body:
                self._scan_fork_under_lock(stmt, is_start, locked)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            children = ast.iter_child_nodes(node)
            for child in children:
                self._scan_fork_under_lock(child, is_start, False)
            return
        for child in ast.iter_child_nodes(node):
            self._scan_fork_under_lock(child, is_start, under_lock)

    # -------------------------------------------------------------- RPV008

    def _scan_handlers(self) -> None:
        """Resolve `signal.signal(SIG, handler)` registrations to local
        defs and audit the handler bodies."""
        defs = {}
        audited: Set[int] = set()
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defs[node.name] = node
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name is None:
                continue
            parts = name.split(".")
            is_register = (
                (len(parts) == 2 and parts[0] in self.signal_aliases and parts[1] == "signal")
                or name == "signal"  # from signal import signal
            )
            if not is_register or len(node.args) < 2:
                continue
            handler = node.args[1]
            if isinstance(handler, ast.Name) and handler.id in defs:
                target = defs[handler.id]
                if id(target) not in audited:
                    audited.add(id(target))
                    self._audit_handler(target)

    def _audit_handler(self, fn: ast.AST) -> None:
        # `raise X(...)` is the canonical SIGALRM-timeout idiom and is
        # safe: exception constructors take no locks, and the raise
        # unwinds out of the handler immediately.
        raised: Set[int] = set()
        for sub in _local_walk(fn):
            if isinstance(sub, ast.Raise) and sub.exc is not None:
                raised.add(id(sub.exc))
        for sub in _local_walk(fn):
            if not isinstance(sub, ast.Call) or id(sub) in raised:
                continue
            name = _call_name(sub)
            if name is None:
                # Method on a non-name receiver, e.g. f"...".encode().
                if (
                    isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in _SAFE_HANDLER_METHODS
                ):
                    continue
                self.add(
                    sub.lineno, sub.col_offset, "RPV008",
                    f"in handler {getattr(fn, 'name', '<handler>')}(): "
                    + FORK_RULES["RPV008"],
                )
                continue
            parts = name.split(".")
            if name in _SAFE_HANDLER_DOTTED:
                continue
            if parts[0] in self.signal_aliases:
                continue
            if parts[-1] in _SAFE_HANDLER_METHODS:
                continue
            self.add(
                sub.lineno, sub.col_offset, "RPV008",
                f"{name}() in handler {getattr(fn, 'name', '<handler>')}(): "
                + FORK_RULES["RPV008"],
            )

    # -------------------------------------------------------------- RPV009

    def _scan_shared_arrays(self) -> None:
        """Per scope: subscripts on names bound from RawArray/Array.

        Scopes are each function *including* its nested defs (a closure
        captures the binding, as the supervisor's ``spawn`` does) plus
        the module top level.
        """
        scopes: List[ast.AST] = [self.tree]
        scopes.extend(
            n for n in ast.walk(self.tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        flagged: Set[int] = set()
        for fn in scopes:
            walker = (
                _local_walk(fn) if isinstance(fn, ast.Module) else ast.walk(fn)
            )
            nodes = list(walker)
            shared: Set[str] = set()
            for sub in nodes:
                if isinstance(sub, ast.Assign) and isinstance(sub.value, ast.Call):
                    if _is_shared_array_ctor(sub.value):
                        for tgt in sub.targets:
                            if isinstance(tgt, ast.Name):
                                shared.add(tgt.id)
            if not shared:
                continue
            for sub in nodes:
                if (
                    isinstance(sub, ast.Subscript)
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id in shared
                    and id(sub) not in flagged
                ):
                    flagged.add(id(sub))
                    self.add(
                        sub.lineno, sub.col_offset, "RPV009",
                        f"{sub.value.id}[...]: " + FORK_RULES["RPV009"],
                    )


def scan_fork_safety(tree: ast.Module, add: AddFn) -> None:
    """Entry point used by :func:`repro.verify.lint.lint_source`."""
    ForkSafetyScanner(tree, add).scan()
