"""The documented allowlist of known-benign ambient sinks.

Every entry is a *justified exception* to the purity certificate: a
function that syntactically touches ambient state but provably cannot
change a cached payload.  The justification string is part of the
certificate output, so a reviewer (or a future PR's CI diff) sees
exactly what is being assumed and why.  Adding an entry without a
justification is impossible by construction -- the mapping value *is*
the justification.

Ground rules for new entries (enforced by review, surfaced by
``python -m repro.verify.flow --list-allowlist``):

* The sink must be **result-neutral**: it may abort a computation
  (deadline), observe it (heartbeat, logging) or pick an execution
  *path* that is proven result-identical (engine selection backed by
  the differential suite) -- it may never alter a completed payload.
* Prefer fixing the code over allowlisting it.  ``resolve_engine`` is
  allowlisted, for example, only because ``PointSpec.__post_init__``
  resolves the engine *before hashing*, so the environment can no
  longer influence a keyed point.
"""

from __future__ import annotations

from typing import Dict

#: Function qualname -> justification.  Kept sorted by qualname.
PURITY_ALLOWLIST: Dict[str, str] = {
    "repro.experiments.runner._check_point_deadline": (
        "wall-clock read drives the cooperative per-point deadline and "
        "heartbeat only; it can abort a run with PointTimeout (no payload "
        "is produced) but never alters a completed measurement"
    ),
    "repro.verify.sanitizer.check_interval": (
        "reads REPRO_SANITIZE_EVERY to pace the opt-in invariant "
        "checker; check frequency can only change how often assertions "
        "run, never the simulated state they assert over"
    ),
    "repro.verify.sanitizer.sanitize_enabled": (
        "reads REPRO_SANITIZE to decide whether to install check-only "
        "invariant assertions; the differential suite proves sanitized "
        "and unsanitized runs byte-identical"
    ),
    "repro.wormhole.batch.BatchStream._mirror": (
        "constructs a numpy MT19937 without a seed, but its state is "
        "immediately overwritten with the seeded CPython generator "
        "state being mirrored -- no ambient entropy can ever reach a "
        "draw; the property suite proves the mirror equal to the "
        "stdlib stream draw by draw"
    ),
    "repro.wormhole.channel.bump_fault_epoch": (
        "advances the module-global fault-invalidation token; consumers "
        "only compare two reads for inequality (cache-invalidation "
        "guard), so the absolute counter value cannot reach a payload, "
        "and within one run the bump sequence is a deterministic "
        "function of the seeded fault plan"
    ),
    "repro.wormhole.engine._batch_vector_min": (
        "reads REPRO_BATCH_VECTOR_MIN, the batch tier's vectorization "
        "threshold; it only selects scalar vs vectorized execution of "
        "the identical one-cycle advance plan (plan_moves is certified "
        "equal to the scalar walk by tests/properties/test_batch_soa "
        "and the differential suite pins the threshold adversarially), "
        "so no value it returns can alter a payload"
    ),
    "repro.wormhole.engine.resolve_engine": (
        "reads REPRO_ENGINE only when no explicit engine is passed; "
        "PointSpec.__post_init__ resolves the engine before hashing, so "
        "every cache key pins its engine, and the differential suite "
        "proves fast == reference bit-identical anyway"
    ),
}
