"""Per-function ambient-effect detection.

An *ambient effect* is any read of (or write to) state outside the
function's arguments that can differ between two executions of the
same configuration -- exactly the things that poison a
content-addressed result cache keyed on the configuration alone
(:mod:`repro.serve.canonical`).  Six kinds are detected:

``env-read``
    ``os.environ`` / ``os.getenv`` / ``os.environb`` in any position
    (subscript, ``.get``, iteration, membership).
``wall-clock``
    ``time.time/`` ``perf_counter`` / ``monotonic`` / ``process_time``
    (and ``_ns`` variants), ``datetime.now/utcnow/today``.
``unseeded-rng``
    the process-global :mod:`random` module (or ``numpy.random``
    legacy functions) instead of a seeded
    :class:`repro.sim.rng.RandomStream`.
``filesystem``
    ``open``, ``os``/``shutil``/``tempfile``/``glob`` filesystem
    calls, and pathlib-style ``read_text`` / ``write_bytes`` /
    ``iterdir`` / ``rglob`` / ``mkdir`` / ``unlink`` method names.
``global-mut``
    a ``global`` declaration that is written, or an in-place mutation
    (attribute/subscript store, mutator-method call) whose base is a
    module-level binding of the same module.
``iter-order``
    iteration over a syntactic ``set`` / ``frozenset`` display,
    comprehension or constructor call that is not wrapped in
    ``sorted(...)`` -- string hashing is randomized per process
    (``PYTHONHASHSEED``), so bare set order is ambient state.

Detection is *syntactic and local*: each function is scanned on its
own, and :mod:`repro.verify.flow.purity` propagates the findings over
the call graph.  Aliasing an ambient module through a container
(``clock = {"t": time}``) defeats the scanner; the repo's own lint
rules (RPV001/RPV002) and review discipline are the backstop for
that, and the certificate documents the assumption.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.verify.flow.callgraph import FunctionNode, ModuleInfo, _dotted

#: Effect kinds, in severity-neutral canonical order.
EFFECT_KINDS = (
    "env-read",
    "wall-clock",
    "unseeded-rng",
    "filesystem",
    "global-mut",
    "iter-order",
)

_WALLCLOCK_TIME_FNS = {
    "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
    "monotonic_ns", "process_time", "process_time_ns", "localtime",
    "gmtime",
}
_WALLCLOCK_DATETIME_FNS = {"now", "utcnow", "today"}
_FS_OS_FNS = {
    "listdir", "scandir", "walk", "stat", "lstat", "remove", "unlink",
    "rename", "replace", "mkdir", "makedirs", "rmdir", "open", "read",
    "write", "fdopen", "kill", "getcwd", "chdir", "symlink", "link",
    "truncate",
}
#: Pathlib-flavored method names distinctive enough to flag on any
#: receiver.  ``replace``/``rename`` are NOT here -- they collide with
#: ``str.replace`` -- so path renames are caught via ``os.replace`` /
#: ``os.rename`` instead.
_FS_PATH_METHODS = {
    "read_text", "read_bytes", "write_text", "write_bytes", "iterdir",
    "rglob", "mkdir", "unlink", "touch", "hardlink_to", "symlink_to",
    "rmdir",
}
_FS_MODULES = {"shutil", "tempfile", "glob"}
_MUTATOR_METHODS = {
    "append", "add", "update", "pop", "clear", "extend", "insert",
    "setdefault", "discard", "remove", "popitem", "appendleft",
    "popleft", "sort",
}


@dataclass(frozen=True)
class Effect:
    """One ambient effect at a source location."""

    kind: str      # one of EFFECT_KINDS
    detail: str    # human-readable sink, e.g. "os.environ['REPRO_ENGINE']"
    line: int

    def __str__(self) -> str:
        return f"{self.kind}: {self.detail} (line {self.line})"

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "detail": self.detail, "line": self.line}


def classify_external_call(dotted: str) -> Optional[str]:
    """Effect kind of a call into a non-project module, if ambient."""
    parts = dotted.split(".")
    head, tail = parts[0], parts[-1]
    if head == "os":
        if tail in ("getenv", "environ", "environb", "putenv"):
            return "env-read"
        if tail in _FS_OS_FNS:
            return "filesystem"
    if head == "time" and tail in _WALLCLOCK_TIME_FNS:
        return "wall-clock"
    if head == "datetime" and tail in _WALLCLOCK_DATETIME_FNS:
        return "wall-clock"
    if head == "random":
        # `random.Random` is excluded here: the *seeded* constructor
        # `random.Random(seed)` is the sanctioned RandomStream
        # implementation.  The syntactic scan flags the zero-argument
        # (system-seeded) form, which does carry ambient state.
        if tail == "Random":
            return None
        return "unseeded-rng"
    if len(parts) >= 2 and parts[-2] == "random" and head in ("numpy", "np"):
        return "unseeded-rng"
    if head in _FS_MODULES:
        return "filesystem"
    if dotted == "open":
        return "filesystem"
    if dotted in ("input", "breakpoint"):
        return "env-read"
    return None


class EffectScanner:
    """Scan one function node for its *own* (local) ambient effects."""

    def __init__(self, fn: FunctionNode, mod: ModuleInfo) -> None:
        self.fn = fn
        self.mod = mod
        self.effects: List[Effect] = []
        # Names this module binds at top level (global-mutation bases).
        self.module_globals: Set[str] = set(mod.toplevel_names)
        # time/random aliases visible in this module.
        self.time_aliases = {
            a for a, m in mod.module_aliases.items() if m.split(".")[0] == "time"
        }
        self.random_aliases = {
            a for a, m in mod.module_aliases.items() if m.split(".")[0] == "random"
        }
        self.os_aliases = {
            a for a, m in mod.module_aliases.items() if m.split(".")[0] == "os"
        }
        #: from-imports of ambient callables: local name -> dotted.
        self.ambient_from = {
            a: d
            for a, d in mod.from_imports.items()
            if classify_external_call(d) is not None
            or d in ("os.environ", "os.environb")
        }

    # ------------------------------------------------------------------ API

    def scan(self) -> List[Effect]:
        declared_global: Set[str] = set()
        for sub in ast.walk(self.fn.node):
            if isinstance(sub, ast.Global):
                declared_global.update(sub.names)
        for sub in ast.walk(self.fn.node):
            self._scan_node(sub, declared_global)
        self.effects.sort(key=lambda e: (e.line, e.kind, e.detail))
        return self.effects

    def _add(self, kind: str, detail: str, line: int) -> None:
        self.effects.append(Effect(kind, detail, line))

    # ------------------------------------------------------------- scanners

    def _scan_node(self, sub: ast.AST, declared_global: Set[str]) -> None:
        if isinstance(sub, ast.Attribute):
            self._scan_attribute(sub)
        elif isinstance(sub, ast.Name):
            self._scan_name(sub)
        elif isinstance(sub, ast.Call):
            self._scan_call(sub)
        elif isinstance(sub, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            self._scan_store(sub, declared_global)
        elif isinstance(sub, (ast.For, ast.AsyncFor)):
            self._scan_iteration(sub.iter)
        elif isinstance(sub, ast.comprehension):
            self._scan_iteration(sub.iter)

    def _scan_attribute(self, sub: ast.Attribute) -> None:
        if (
            isinstance(sub.value, ast.Name)
            and sub.value.id in self.os_aliases
            and sub.attr in ("environ", "environb")
        ):
            self._add("env-read", f"os.{sub.attr}", sub.lineno)

    def _scan_name(self, sub: ast.Name) -> None:
        if not isinstance(sub.ctx, ast.Load):
            return
        dotted = self.ambient_from.get(sub.id)
        if dotted is None:
            return
        kind = classify_external_call(dotted)
        if dotted in ("os.environ", "os.environb"):
            kind = "env-read"
        if kind is not None:
            self._add(kind, dotted, sub.lineno)

    def _scan_call(self, call: ast.Call) -> None:
        fn = call.func
        if isinstance(fn, ast.Name):
            if fn.id == "open":
                self._add("filesystem", "open()", call.lineno)
            return
        dotted = _dotted(fn)
        if dotted is not None:
            head = dotted.split(".")[0]
            target_mod = self.mod.module_aliases.get(head)
            if target_mod is not None:
                canon = dotted.replace(head, target_mod, 1)
                if canon == "random.Random":
                    if not call.args and not call.keywords:
                        self._add(
                            "unseeded-rng", "random.Random()", call.lineno
                        )
                    return
                kind = classify_external_call(canon)
                if kind is not None:
                    self._add(kind, f"{canon}()", call.lineno)
                return
        # Receiver-style ambient methods (pathlib file I/O, mutators on
        # module globals are handled in _scan_store-adjacent logic).
        if isinstance(fn, ast.Attribute):
            if fn.attr in _FS_PATH_METHODS:
                self._add("filesystem", f".{fn.attr}()", call.lineno)
            elif (
                fn.attr in _MUTATOR_METHODS
                and isinstance(fn.value, ast.Name)
                and fn.value.id in self.module_globals
                and not self._is_local_shadow(fn.value.id)
            ):
                self._add(
                    "global-mut",
                    f"{fn.value.id}.{fn.attr}() on module-level binding",
                    call.lineno,
                )

    def _scan_store(self, sub: ast.AST, declared_global: Set[str]) -> None:
        targets: List[ast.expr]
        if isinstance(sub, ast.Assign):
            targets = list(sub.targets)
        else:
            targets = [sub.target]
        for tgt in targets:
            if isinstance(tgt, ast.Name) and tgt.id in declared_global:
                self._add(
                    "global-mut",
                    f"global {tgt.id} assigned",
                    tgt.lineno,
                )
            elif isinstance(tgt, (ast.Attribute, ast.Subscript)):
                base = tgt.value
                if (
                    isinstance(base, ast.Name)
                    and base.id in self.module_globals
                    and not self._is_local_shadow(base.id)
                ):
                    what = (
                        f"{base.id}[...]" if isinstance(tgt, ast.Subscript)
                        else f"{base.id}.{tgt.attr}"
                    )
                    self._add(
                        "global-mut",
                        f"{what} store on module-level binding",
                        tgt.lineno,
                    )

    def _scan_iteration(self, it: ast.expr) -> None:
        if self._is_bare_set_expr(it):
            self._add(
                "iter-order",
                "iteration over an unsorted set expression",
                it.lineno,
            )

    # -------------------------------------------------------------- helpers

    def _is_local_shadow(self, name: str) -> bool:
        """True when the function rebinds ``name`` locally (params or
        plain assignment), so stores target the local, not the global."""
        node = self.fn.node
        args = getattr(node, "args", None)
        if args is not None:
            all_args = [
                *args.posonlyargs, *args.args, *args.kwonlyargs,
                *([args.vararg] if args.vararg else []),
                *([args.kwarg] if args.kwarg else []),
            ]
            if any(a.arg == name for a in all_args):
                return True
        for sub in ast.walk(node):
            if isinstance(sub, ast.Global) and name in sub.names:
                return False
            if isinstance(sub, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == name for t in sub.targets
            ):
                return True
            if isinstance(sub, (ast.AnnAssign, ast.AugAssign)) and isinstance(
                sub.target, ast.Name
            ) and sub.target.id == name:
                return True
            if isinstance(sub, (ast.For, ast.AsyncFor)) and isinstance(
                sub.target, ast.Name
            ) and sub.target.id == name:
                return True
        return False

    @staticmethod
    def _is_bare_set_expr(it: ast.expr) -> bool:
        if isinstance(it, (ast.Set, ast.SetComp)):
            return True
        if isinstance(it, ast.Call):
            fn = it.func
            name = fn.id if isinstance(fn, ast.Name) else (
                fn.attr if isinstance(fn, ast.Attribute) else None
            )
            return name in ("set", "frozenset")
        return False


def function_effects(fn: FunctionNode, mod: ModuleInfo) -> List[Effect]:
    """Local ambient effects of one function: syntactic scan plus the
    classification of its already-resolved external calls."""
    effects = EffectScanner(fn, mod).scan()
    seen = {(e.kind, e.detail) for e in effects}
    for dotted in sorted(fn.external_calls):
        kind = classify_external_call(dotted)
        if kind is not None and (kind, f"{dotted}()") not in seen:
            # External-call classification has no line: callgraph
            # resolution drops locations.  Use the def line.
            effects.append(Effect(kind, f"{dotted}()", fn.lineno))
    effects.sort(key=lambda e: (e.line, e.kind, e.detail))
    return effects
