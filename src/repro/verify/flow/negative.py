"""Seeded-impure fixtures: the purity analyzer's negative control.

Like :mod:`repro.verify.negative` for the CDG checker, these in-memory
modules prove the *analyzer itself* is alive: a certification run over
them must produce witness call chains, or the checker is vacuous and
CI fails.  The fixture hides each ambient effect **three calls deep**
behind pure-looking wrappers -- exactly the failure mode a local (per-
function) scan cannot catch and the interprocedural pass must.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:  # pragma: no cover
    from repro.verify.flow.purity import PurityCertificate

#: module name -> source.  `entry_point` -> `middle` -> `inner` where
#: only `inner` touches ambient state, spread across two modules so the
#: import-table resolution is exercised too.
IMPURE_FIXTURE_SOURCES: Dict[str, str] = {
    "fixture.depths": '''
import os
import time


def read_mode():
    """Three-deep env read: the classic cache poisoner."""
    return os.environ.get("FIXTURE_MODE", "fast")


def stamp():
    return time.monotonic()
''',
    "fixture.wrappers": '''
from fixture.depths import read_mode, stamp


def choose_mode():
    return read_mode()


def latency_now():
    return stamp()
''',
    "fixture.entry": '''
from fixture.wrappers import choose_mode, latency_now


def build_config():
    return {"mode": choose_mode()}


def run_fixture_point(load):
    cfg = build_config()
    t = latency_now()
    return {"cfg": cfg, "t": t, "load": load}
''',
}

#: The fixture's certified entry point.
IMPURE_FIXTURE_ENTRY = "fixture.entry.run_fixture_point"

#: Effect kinds the fixture must be convicted of (env read via
#: run_fixture_point -> build_config -> choose_mode -> read_mode, and
#: the wall-clock read via latency_now -> stamp).
IMPURE_FIXTURE_EXPECTED_KINDS = ("env-read", "wall-clock")


def negative_control_certificate() -> "PurityCertificate":
    """Certify the fixture; a healthy analyzer returns violations."""
    from repro.verify.flow.purity import ProjectAnalysis, certify

    analysis = ProjectAnalysis.from_sources(
        IMPURE_FIXTURE_SOURCES, package="fixture"
    )
    return certify(analysis, entries=(IMPURE_FIXTURE_ENTRY,), allowlist={})
