"""Conservative interprocedural call graph over a Python package AST.

The graph is built purely syntactically (no imports are executed):
every ``*.py`` file under a package root is parsed, every function and
method becomes a node keyed by its dotted qualname
(``repro.serve.compute.run_point_spec``,
``repro.wormhole.engine.WormholeEngine.offer``), and every call site
is resolved to the *set* of project functions it may reach.

Resolution is deliberately an over-approximation -- when a call cannot
be pinned to one target it unions every plausible one -- because the
purity pass on top (:mod:`repro.verify.flow.purity`) must never miss a
reachable ambient effect.  The resolution ladder, most precise first:

1. **Direct names** -- ``f(...)`` resolves through the module's own
   defs, then its ``from m import f`` table.  A name bound to a
   project class resolves to the class constructor
   (``__init__`` + ``__post_init__``).
2. **Module attributes** -- ``mod.f(...)`` resolves through the import
   table (``import repro.serve.cache as mod``); calls into modules
   outside the project are recorded as *external* calls for the effect
   classifier, not edges.
3. **Typed receivers** -- ``x.m(...)`` uses light flow-insensitive
   type inference: parameter annotations, ``x = ClassName(...)``
   local bindings, dataclass field annotations and
   ``self.attr = ClassName(...)`` assignments all type their receiver,
   and the method then resolves within that class (walking base
   classes by name).
4. **Name matching** -- an untyped receiver unions every project
   function or method with that name, *except* names in
   :data:`GENERIC_METHOD_NAMES` (``get``, ``items``, ``append`` ...),
   which overwhelmingly denote builtin-container operations; matching
   those across the project would connect unrelated subsystems and
   drown the analysis in false paths.  The certificate reports how
   many calls took this assumption (see
   :attr:`FunctionNode.generic_skipped`).

Nested functions and lambdas are *merged into their enclosing
function*: their bodies' calls and effects are attributed to the
parent, which over-approximates (a nested def counts even if never
invoked) but never under-approximates.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

#: Method names resolved as builtin-container/stdlib-object operations
#: when the receiver's type is unknown (documented soundness
#: assumption; the certificate counts every use).
GENERIC_METHOD_NAMES: frozenset = frozenset({
    "add", "append", "appendleft", "clear", "copy", "count", "discard",
    "encode", "decode", "endswith", "extend", "format", "get", "index",
    "insert", "items", "join", "keys", "lower", "lstrip", "pop",
    "popleft", "popitem", "remove", "replace", "reverse", "rstrip",
    "setdefault", "sort", "split", "splitlines", "startswith", "strip",
    "title", "update", "upper", "values",
})


@dataclass
class ClassInfo:
    """One project class: methods, base names, attribute types."""

    qualname: str                 # module.ClassName
    module: str
    name: str
    bases: Tuple[str, ...] = ()              # syntactic base-class names
    methods: Dict[str, str] = field(default_factory=dict)   # name -> fn qualname
    attr_types: Dict[str, str] = field(default_factory=dict)  # attr -> class name
    is_dataclass: bool = False


@dataclass
class FunctionNode:
    """One function/method node of the call graph."""

    qualname: str                 # module(.Class).name
    module: str
    name: str
    lineno: int
    node: ast.AST
    class_name: Optional[str] = None
    calls: Set[str] = field(default_factory=set)        # project qualnames
    external_calls: Set[str] = field(default_factory=set)  # dotted externals
    unresolved: List[str] = field(default_factory=list)   # call-of-expression
    generic_skipped: int = 0      # untyped generic-method assumption uses


@dataclass
class ModuleInfo:
    """One parsed module and its import/name tables."""

    name: str
    path: str
    tree: ast.Module
    module_aliases: Dict[str, str] = field(default_factory=dict)  # alias -> module
    from_imports: Dict[str, str] = field(default_factory=dict)    # alias -> dotted
    toplevel_names: Set[str] = field(default_factory=set)


def _annotation_names(node: Optional[ast.expr]) -> List[str]:
    """Candidate class names mentioned by an annotation expression."""
    if node is None:
        return []
    names: List[str] = []
    stack: List[ast.AST] = [node]
    while stack:
        sub = stack.pop()
        if isinstance(sub, ast.Name):
            names.append(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.append(sub.attr)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            # `x: "ClassName"` / postponed annotations.
            try:
                stack.append(ast.parse(sub.value, mode="eval").body)
            except SyntaxError:
                pass
        else:
            stack.extend(ast.iter_child_nodes(sub))
    return names


def _dotted(node: ast.expr) -> Optional[str]:
    """``a.b.c`` attribute chain as a dotted string, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_self_attr(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _iter_py_files(root: Path) -> Iterator[Path]:
    yield from sorted(root.rglob("*.py"))


def _module_name(root: Path, package: str, path: Path) -> str:
    rel = path.relative_to(root).with_suffix("")
    parts = list(rel.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join([package, *parts]) if parts else package


class ProjectGraph:
    """All modules, classes and function nodes of one analyzed package."""

    def __init__(self, package: str) -> None:
        self.package = package
        self.modules: Dict[str, ModuleInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}          # by qualname
        self.classes_by_name: Dict[str, List[ClassInfo]] = {}
        self.functions: Dict[str, FunctionNode] = {}     # by qualname
        self.functions_by_name: Dict[str, List[FunctionNode]] = {}

    # -------------------------------------------------------------- loading

    @classmethod
    def from_sources(
        cls, sources: Dict[str, str], package: str = "repro"
    ) -> "ProjectGraph":
        """Build from in-memory ``{module_name: source}`` (tests/fixtures)."""
        graph = cls(package)
        for name, src in sorted(sources.items()):
            graph._add_module(name, f"<{name}>", ast.parse(src))
        graph._resolve_all()
        return graph

    @classmethod
    def from_package(cls, root: Path, package: str = "repro") -> "ProjectGraph":
        """Parse every module under ``root`` (the package directory)."""
        root = Path(root)
        graph = cls(package)
        for path in _iter_py_files(root):
            name = _module_name(root, package, path)
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
            graph._add_module(name, str(path), tree)
        graph._resolve_all()
        return graph

    def _add_module(self, name: str, path: str, tree: ast.Module) -> None:
        mod = ModuleInfo(name=name, path=path, tree=tree)
        self.modules[name] = mod
        # Import tables are harvested from the whole tree, not just the
        # top level: lazy `from x import f` inside a function must still
        # resolve `f()` at that call site.
        for sub in ast.walk(tree):
            if isinstance(sub, ast.Import):
                for alias in sub.names:
                    if alias.asname:
                        mod.module_aliases[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        mod.module_aliases.setdefault(head, head)
            elif isinstance(sub, ast.ImportFrom) and sub.module and sub.level == 0:
                for alias in sub.names:
                    mod.from_imports.setdefault(
                        alias.asname or alias.name,
                        f"{sub.module}.{alias.name}",
                    )
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(mod, stmt, class_name=None)
            elif isinstance(stmt, ast.ClassDef):
                self._add_class(mod, stmt)
            elif isinstance(stmt, ast.Assign):
                for tgt in stmt.targets:
                    if isinstance(tgt, ast.Name):
                        mod.toplevel_names.add(tgt.id)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                mod.toplevel_names.add(stmt.target.id)

    def _add_class(self, mod: ModuleInfo, node: ast.ClassDef) -> None:
        qual = f"{mod.name}.{node.name}"
        bases = tuple(
            b for b in (_annotation_names(base)[:1] for base in node.bases) for b in b
        )
        info = ClassInfo(
            qualname=qual,
            module=mod.name,
            name=node.name,
            bases=bases,
            is_dataclass=any(
                (isinstance(d, ast.Call) and _dotted(d.func) in ("dataclass", "dataclasses.dataclass"))
                or _dotted(d) in ("dataclass", "dataclasses.dataclass")
                for d in node.decorator_list
            ),
        )
        self.classes[qual] = info
        self.classes_by_name.setdefault(node.name, []).append(info)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = self._add_function(mod, stmt, class_name=node.name)
                info.methods[stmt.name] = fn.qualname
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                for cand in _annotation_names(stmt.annotation):
                    if cand[:1].isupper():
                        info.attr_types.setdefault(stmt.target.id, cand)
                        break

    def _add_function(
        self,
        mod: ModuleInfo,
        node: ast.AST,
        class_name: Optional[str],
    ) -> FunctionNode:
        prefix = f"{mod.name}.{class_name}." if class_name else f"{mod.name}."
        fn = FunctionNode(
            qualname=f"{prefix}{node.name}",
            module=mod.name,
            name=node.name,
            lineno=node.lineno,
            node=node,
            class_name=class_name,
        )
        self.functions[fn.qualname] = fn
        self.functions_by_name.setdefault(node.name, []).append(fn)
        if class_name is None:
            mod.toplevel_names.add(node.name)
        return fn

    # ------------------------------------------------------------ resolving

    def _resolve_all(self) -> None:
        self._harvest_attr_types()
        for fn in self.functions.values():
            _CallResolver(self, fn).run()

    def _harvest_attr_types(self) -> None:
        """Type ``self.x`` from method bodies.

        Handles ``self.x = ClassName(...)``, ``self.x = param`` for an
        annotated parameter, and ``self.x: ClassName = ...``.
        """
        for cls in self.classes.values():
            for method_qual in cls.methods.values():
                fn = self.functions[method_qual]
                params = self._param_class_types(fn)
                for sub in ast.walk(fn.node):
                    if isinstance(sub, ast.Assign):
                        cand = self._call_class_name(
                            sub.value, self.modules[fn.module]
                        )
                        if cand is None and isinstance(sub.value, ast.Name):
                            cand = params.get(sub.value.id)
                        if cand is None:
                            continue
                        for tgt in sub.targets:
                            if _is_self_attr(tgt):
                                cls.attr_types.setdefault(tgt.attr, cand)
                    elif isinstance(sub, ast.AnnAssign) and _is_self_attr(
                        sub.target
                    ):
                        for cand in _annotation_names(sub.annotation):
                            if cand in self.classes_by_name:
                                cls.attr_types.setdefault(sub.target.attr, cand)
                                break

    def _param_class_types(self, fn: FunctionNode) -> Dict[str, str]:
        """Parameter name -> project class name from annotations."""
        out: Dict[str, str] = {}
        args = getattr(fn.node, "args", None)
        if args is None:
            return out
        for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            for cand in _annotation_names(a.annotation):
                if cand in self.classes_by_name:
                    out[a.arg] = cand
                    break
        return out

    def _call_class_name(
        self, value: ast.expr, mod: ModuleInfo
    ) -> Optional[str]:
        """Class name when ``value`` constructs a project class."""
        if not isinstance(value, ast.Call):
            return None
        name = None
        if isinstance(value.func, ast.Name):
            name = value.func.id
            dotted = mod.from_imports.get(name)
            if dotted is not None:
                name = dotted.rsplit(".", 1)[-1]
        elif isinstance(value.func, ast.Attribute):
            name = value.func.attr
        if name is not None and name in self.classes_by_name:
            return name
        return None

    # -------------------------------------------------------------- queries

    def lookup_class(self, name: str) -> Optional[ClassInfo]:
        matches = self.classes_by_name.get(name, [])
        return matches[0] if matches else None

    def class_method(self, class_name: str, method: str) -> List[str]:
        """Resolve ``method`` in ``class_name`` walking base names."""
        seen: Set[str] = set()
        queue = [class_name]
        while queue:
            cn = queue.pop(0)
            if cn in seen:
                continue
            seen.add(cn)
            for cls in self.classes_by_name.get(cn, []):
                if method in cls.methods:
                    return [cls.methods[method]]
                queue.extend(cls.bases)
        return []

    def constructor_targets(self, class_name: str) -> List[str]:
        out: List[str] = []
        for cls in self.classes_by_name.get(class_name, []):
            for special in ("__init__", "__post_init__", "__new__"):
                out.extend(self.class_method(cls.name, special))
        return out


class _CallResolver:
    """Extract and resolve every call site of one function node."""

    def __init__(self, graph: ProjectGraph, fn: FunctionNode) -> None:
        self.graph = graph
        self.fn = fn
        self.mod = graph.modules[fn.module]
        self.local_types: Dict[str, str] = {}   # var -> class name

    def run(self) -> None:
        node = self.fn.node
        self._type_params(node)
        self._type_locals(node)
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._resolve_call(sub)

    # ---------------------------------------------------------- local types

    def _type_params(self, node: ast.AST) -> None:
        args = getattr(node, "args", None)
        if args is None:
            return
        every = [
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *( [args.vararg] if args.vararg else [] ),
            *( [args.kwarg] if args.kwarg else [] ),
        ]
        for a in every:
            for cand in _annotation_names(a.annotation):
                if cand in self.graph.classes_by_name:
                    self.local_types[a.arg] = cand
                    break

    def _type_locals(self, node: ast.AST) -> None:
        # Two passes so chains over earlier locals resolve regardless of
        # walk order (`env = engine.env` before `ticker = env.ticker`).
        for _ in range(2):
            for sub in ast.walk(node):
                if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                    tgt = sub.targets[0]
                    if isinstance(tgt, ast.Name):
                        cand = self._receiver_type(sub.value)
                        if cand is None and isinstance(sub.value, ast.Call):
                            cand = self._return_class(sub.value)
                        if cand is not None and cand in self.graph.classes_by_name:
                            self.local_types[tgt.id] = cand
                    elif isinstance(tgt, ast.Tuple) and isinstance(
                        sub.value, ast.Call
                    ):
                        self._type_tuple_unpack(tgt, sub.value)
                elif isinstance(sub, ast.AnnAssign) and isinstance(
                    sub.target, ast.Name
                ):
                    for cand in _annotation_names(sub.annotation):
                        if cand in self.graph.classes_by_name:
                            self.local_types[sub.target.id] = cand
                            break

    def _project_fn_for_call(self, call: ast.Call) -> Optional[FunctionNode]:
        """The single project function a call resolves to, if known."""
        f = call.func
        if isinstance(f, ast.Name):
            fn = self.graph.functions.get(f"{self.mod.name}.{f.id}")
            if fn is not None:
                return fn
            dotted = self.mod.from_imports.get(f.id)
            if dotted is not None:
                return self.graph.functions.get(dotted)
        elif isinstance(f, ast.Attribute):
            dotted = _dotted(f)
            if dotted is not None:
                head, _, rest = dotted.partition(".")
                target_mod = self.mod.module_aliases.get(head)
                if target_mod is not None and rest:
                    return self.graph.functions.get(f"{target_mod}.{rest}")
        return None

    def _return_class(self, call: ast.Call) -> Optional[str]:
        """Project class named by the callee's return annotation."""
        fn = self._project_fn_for_call(call)
        returns = getattr(fn.node, "returns", None) if fn is not None else None
        for cand in _annotation_names(returns):
            if cand in self.graph.classes_by_name:
                return cand
        return None

    def _type_tuple_unpack(self, tgt: ast.Tuple, call: ast.Call) -> None:
        """``a, b, c = f(...)`` with ``f() -> tuple[A, B, C]``."""
        fn = self._project_fn_for_call(call)
        returns = getattr(fn.node, "returns", None) if fn is not None else None
        if not (
            isinstance(returns, ast.Subscript)
            and isinstance(returns.slice, ast.Tuple)
            and len(returns.slice.elts) == len(tgt.elts)
        ):
            return
        head = returns.value
        head_name = head.id if isinstance(head, ast.Name) else (
            head.attr if isinstance(head, ast.Attribute) else None
        )
        if head_name not in ("tuple", "Tuple"):
            return
        for name_node, ann in zip(tgt.elts, returns.slice.elts):
            if not isinstance(name_node, ast.Name):
                continue
            for cand in _annotation_names(ann):
                if cand in self.graph.classes_by_name:
                    self.local_types[name_node.id] = cand
                    break

    # ------------------------------------------------------------- resolve

    def _add_project(self, quals: List[str]) -> bool:
        if not quals:
            return False
        self.fn.calls.update(quals)
        return True

    def _resolve_call(self, call: ast.Call) -> None:
        fn = call.func
        if isinstance(fn, ast.Name):
            self._resolve_name_call(call, fn.id)
        elif isinstance(fn, ast.Attribute):
            self._resolve_attr_call(call, fn)
        else:
            # Calling a call result / subscript / lambda: the target is
            # dynamic.  Recorded, surfaced in the certificate.
            self.fn.unresolved.append(
                f"line {call.lineno}: call of non-name expression"
            )

    def _resolve_name_call(self, call: ast.Call, name: str) -> None:
        mod = self.mod
        # Same-module function?
        qual = f"{mod.name}.{name}"
        if qual in self.graph.functions:
            self._add_project([qual])
            return
        # Project class constructor (same module, imported, or -- the
        # conservative over-approximation -- same-named anywhere)?
        if name in self.graph.classes_by_name:
            self._add_project(self.graph.constructor_targets(name))
            return
        # from-import of a project function?
        dotted = mod.from_imports.get(name)
        if dotted is not None:
            if dotted in self.graph.functions:
                self._add_project([dotted])
            else:
                self.fn.external_calls.add(dotted)
            return
        # Builtin or unknown global: external by bare name.
        self.fn.external_calls.add(name)

    def _resolve_attr_call(self, call: ast.Call, fn: ast.Attribute) -> None:
        graph = self.graph
        dotted = _dotted(fn)
        # Module-qualified: `alias.f()` or `a.b.c.f()`.
        if dotted is not None:
            head, _, rest = dotted.partition(".")
            target_mod = self.mod.module_aliases.get(head)
            if target_mod is not None:
                full = f"{target_mod}.{rest}" if rest else target_mod
                if full in graph.functions:
                    self._add_project([full])
                    return
                # `mod.ClassName(...)` constructor.
                tail = full.rsplit(".", 1)[-1]
                if tail in graph.classes_by_name and self._add_project(
                    graph.constructor_targets(tail)
                ):
                    return
                self.fn.external_calls.add(full)
                return
            # from-imported object used attribute-style (`obj.m()`).
        base = fn.value
        method = fn.attr
        # `super().m(...)` resolves through the enclosing class's bases
        # only -- never by global name match, which would union every
        # same-named method (disastrous for `__init__`).
        if (
            isinstance(base, ast.Call)
            and isinstance(base.func, ast.Name)
            and base.func.id == "super"
        ):
            targets: List[str] = []
            if self.fn.class_name:
                cls = graph.classes.get(
                    f"{self.fn.module}.{self.fn.class_name}"
                )
                if cls is not None:
                    for base_name in cls.bases:
                        targets.extend(graph.class_method(base_name, method))
            if not self._add_project(targets):
                self.fn.external_calls.add(f"super.{method}")
            return
        # Receiver-typed resolution.
        cls_name = self._receiver_type(base)
        if cls_name is not None:
            targets = graph.class_method(cls_name, method)
            if self._add_project(targets):
                return
            # Typed receiver but unknown method (inherited from a
            # non-project base, or a generic container field).
            self.fn.external_calls.add(f"{cls_name}.{method}")
            return
        # `ClassName.method(...)` static-style call.
        if isinstance(base, ast.Name) and base.id in graph.classes_by_name:
            if self._add_project(graph.class_method(base.id, method)):
                return
        # Untyped receiver: name matching.  Generic container/str names
        # and dunders are excluded -- matching `__init__` or `get`
        # project-wide would connect every subsystem to every other.
        if method in GENERIC_METHOD_NAMES or (
            method.startswith("__") and method.endswith("__")
        ):
            self.fn.generic_skipped += 1
            return
        matches = [f.qualname for f in graph.functions_by_name.get(method, [])]
        if matches:
            self._add_project(matches)
        else:
            self.fn.external_calls.add(f"?.{method}")

    def _receiver_type(self, base: ast.expr) -> Optional[str]:
        """Class name of an expression, recursing through attributes.

        Types ``self``, annotated params/locals, ``ClassName(...)``
        results, and attribute chains over them (``engine.env`` when
        ``engine: WormholeEngine`` and ``self.env = env`` typed the
        ``env`` attribute).
        """
        if isinstance(base, ast.Name):
            if base.id in ("self", "cls") and self.fn.class_name:
                return self.fn.class_name
            return self.local_types.get(base.id)
        if isinstance(base, ast.Attribute):
            owner = self._receiver_type(base.value)
            if owner is not None:
                cand = self._attr_type(owner, base.attr)
                if cand in self.graph.classes_by_name:
                    return cand
            return None
        if isinstance(base, ast.Call):
            return self.graph._call_class_name(base, self.mod)
        if isinstance(base, ast.IfExp):
            # `(x if cond else y).m()` is typed only when both branches
            # agree -- one unknown branch could hide a different class.
            a = self._receiver_type(base.body)
            b = self._receiver_type(base.orelse)
            if a is not None and a == b:
                return a
        return None

    def _attr_type(self, class_name: str, attr: str) -> Optional[str]:
        """Declared type of ``attr`` in ``class_name`` or its bases."""
        seen: Set[str] = set()
        queue = [class_name]
        while queue:
            cn = queue.pop(0)
            if cn in seen:
                continue
            seen.add(cn)
            for cls in self.graph.classes_by_name.get(cn, []):
                cand = cls.attr_types.get(attr)
                if cand is not None:
                    return cand
                queue.extend(cls.bases)
        return None
