"""Purity certification: propagate effects over the call graph.

Combines the conservative call graph
(:mod:`repro.verify.flow.callgraph`) with the local effect scan
(:mod:`repro.verify.flow.effects`) into whole-program summaries, then
certifies that everything reachable from the declared entry points is
ambient-free -- or fails with a **witness call chain**::

    run_point_spec -> build_point -> resolve_engine reads os.environ

The certificate is machine-checkable JSON: entries, the reachable
closure size, every violation with its chain, every allowlisted sink
that was actually reached (with its justification), and the soundness
assumptions the analysis made (dynamic calls it could not resolve,
generic container methods it did not name-match).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.verify.flow.allowlist import PURITY_ALLOWLIST
from repro.verify.flow.callgraph import ProjectGraph
from repro.verify.flow.effects import Effect, function_effects

CERTIFICATE_VERSION = 1

#: The cache compute closure's certified entry points: the worker
#: payload function, the plain experiment point it wraps, and the
#: engine/scheduler run loops everything executes on.
DEFAULT_ENTRY_POINTS = (
    "repro.serve.compute.run_point_spec",
    "repro.experiments.runner.run_point",
    "repro.experiments.runner.build_point",
    "repro.wormhole.engine.WormholeEngine.step_cycle",
    "repro.sim.core.Environment.run",
)


@dataclass(frozen=True)
class Violation:
    """One impure function reachable from an entry point."""

    function: str          # qualname owning the effect
    effect: Effect
    chain: Tuple[str, ...]  # entry -> ... -> function (call path)

    def witness(self) -> str:
        arrow = " -> ".join(self.chain)
        return f"{arrow} :: {self.effect}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "function": self.function,
            "effect": self.effect.to_dict(),
            "chain": list(self.chain),
        }


@dataclass
class PurityCertificate:
    """The machine-checkable result of one certification run."""

    entries: Tuple[str, ...]
    reachable: int
    violations: List[Violation] = field(default_factory=list)
    allowlist_uses: Dict[str, str] = field(default_factory=dict)
    missing_entries: List[str] = field(default_factory=list)
    unused_allowlist: List[str] = field(default_factory=list)
    dynamic_calls: int = 0
    generic_skipped: int = 0
    functions_analyzed: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations and not self.missing_entries

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": CERTIFICATE_VERSION,
            "ok": self.ok,
            "entries": list(self.entries),
            "functions_analyzed": self.functions_analyzed,
            "reachable": self.reachable,
            "violations": [v.to_dict() for v in self.violations],
            "allowlist_uses": dict(sorted(self.allowlist_uses.items())),
            "unused_allowlist": sorted(self.unused_allowlist),
            "missing_entries": list(self.missing_entries),
            "assumptions": {
                "dynamic_calls_unresolved": self.dynamic_calls,
                "generic_methods_skipped": self.generic_skipped,
            },
        }

    def render(self, verbose: bool = False) -> str:
        lines: List[str] = []
        verdict = "PURE" if self.ok else "IMPURE"
        lines.append(
            f"purity certificate: {verdict} -- {self.reachable} function(s) "
            f"reachable from {len(self.entries)} entry point(s)"
        )
        for entry in self.missing_entries:
            lines.append(f"  MISSING ENTRY: {entry} (not found in project)")
        for v in self.violations:
            lines.append(f"  WITNESS: {v.witness()}")
        if self.allowlist_uses:
            lines.append(
                f"  {len(self.allowlist_uses)} allowlisted sink(s) reached:"
            )
            for name, why in sorted(self.allowlist_uses.items()):
                lines.append(f"    - {name}")
                if verbose:
                    lines.append(f"        {why}")
        if self.unused_allowlist:
            lines.append(
                f"  {len(self.unused_allowlist)} allowlist entr(ies) not "
                f"reached (candidates for removal): "
                + ", ".join(sorted(self.unused_allowlist))
            )
        lines.append(
            f"  assumptions: {self.dynamic_calls} dynamic call(s) "
            f"unresolved, {self.generic_skipped} generic container "
            "method(s) not name-matched"
        )
        return "\n".join(lines)


@dataclass
class ProjectAnalysis:
    """A parsed project with per-function local effect summaries."""

    graph: ProjectGraph
    local_effects: Dict[str, List[Effect]] = field(default_factory=dict)

    @classmethod
    def of_graph(cls, graph: ProjectGraph) -> "ProjectAnalysis":
        analysis = cls(graph=graph)
        for qual, fn in graph.functions.items():
            mod = graph.modules[fn.module]
            analysis.local_effects[qual] = function_effects(fn, mod)
        return analysis

    @classmethod
    def from_package(
        cls, root: Path, package: str = "repro"
    ) -> "ProjectAnalysis":
        return cls.of_graph(ProjectGraph.from_package(root, package))

    @classmethod
    def from_sources(
        cls, sources: Dict[str, str], package: str = "repro"
    ) -> "ProjectAnalysis":
        return cls.of_graph(ProjectGraph.from_sources(sources, package))


def certify(
    analysis: ProjectAnalysis,
    entries: Sequence[str] = DEFAULT_ENTRY_POINTS,
    allowlist: Optional[Dict[str, str]] = None,
) -> PurityCertificate:
    """Certify the entry points' reachable closure ambient-free.

    Allowlisted functions act as *summary barriers*: they are recorded
    when reached (with their justification) but neither their own
    effects nor their callees' propagate -- the justification asserts
    the whole subtree result-neutral.
    """
    if allowlist is None:
        allowlist = PURITY_ALLOWLIST
    graph = analysis.graph
    cert = PurityCertificate(
        entries=tuple(entries),
        reachable=0,
        functions_analyzed=len(graph.functions),
    )

    # BFS over call edges, remembering the first (shortest) call chain
    # that reached each function -- that chain is the witness.
    parent: Dict[str, Optional[str]] = {}
    queue: List[str] = []
    for entry in entries:
        if entry not in graph.functions:
            cert.missing_entries.append(entry)
            continue
        if entry not in parent:
            parent[entry] = None
            queue.append(entry)

    while queue:
        qual = queue.pop(0)
        fn = graph.functions[qual]
        if qual in allowlist:
            cert.allowlist_uses[qual] = allowlist[qual]
            continue  # summary barrier: do not scan or descend
        cert.reachable += 1
        cert.dynamic_calls += len(fn.unresolved)
        cert.generic_skipped += fn.generic_skipped
        for eff in analysis.local_effects.get(qual, ()):
            cert.violations.append(
                Violation(
                    function=qual,
                    effect=eff,
                    chain=_chain(parent, qual),
                )
            )
        for callee in sorted(fn.calls):
            if callee not in parent and callee in graph.functions:
                parent[callee] = qual
                queue.append(callee)

    cert.unused_allowlist = sorted(
        set(allowlist) - set(cert.allowlist_uses)
    )
    cert.violations.sort(key=lambda v: (len(v.chain), v.function, v.effect.line))
    return cert


def _chain(parent: Dict[str, Optional[str]], qual: str) -> Tuple[str, ...]:
    chain: List[str] = []
    cur: Optional[str] = qual
    while cur is not None:
        chain.append(cur)
        cur = parent[cur]
    return tuple(reversed(chain))
