"""Command-line interface: ``python -m repro.verify.flow``.

Examples::

    # certify the cache compute closure ambient-free (the CI gate)
    python -m repro.verify.flow --certify

    # write the machine-checkable certificate next to the logs
    python -m repro.verify.flow --certify --json flow-cert.json

    # prove the analyzer is not vacuous (seeded impure fixture)
    python -m repro.verify.flow --negative-control

    # custom entry points / package root
    python -m repro.verify.flow --certify --entry repro.serve.compute.run_point_spec

Exit status 0 iff every requested check passed (for the negative
control: iff the analyzer *convicted* the impure fixture with witness
chains of the expected kinds).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.verify.flow.allowlist import PURITY_ALLOWLIST
from repro.verify.flow.negative import (
    IMPURE_FIXTURE_EXPECTED_KINDS,
    negative_control_certificate,
)
from repro.verify.flow.purity import (
    DEFAULT_ENTRY_POINTS,
    ProjectAnalysis,
    certify,
)

#: Default package root: src/repro, resolved relative to this file so
#: the CLI works from any working directory of a source checkout.
_DEFAULT_ROOT = Path(__file__).resolve().parents[3] / "repro"


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.verify.flow",
        description=(
            "Interprocedural purity certification of the sweep "
            "service's cache compute closure."
        ),
    )
    p.add_argument(
        "--certify",
        action="store_true",
        help="certify the entry points' reachable closure ambient-free",
    )
    p.add_argument(
        "--negative-control",
        action="store_true",
        help=(
            "analyze the seeded impure fixture; succeeds iff the "
            "analyzer convicts it with witness call chains"
        ),
    )
    p.add_argument(
        "--entry",
        action="append",
        default=None,
        metavar="QUALNAME",
        help=(
            "entry point qualname (repeatable; default: the certified "
            "compute-closure set)"
        ),
    )
    p.add_argument(
        "--root",
        type=Path,
        default=_DEFAULT_ROOT,
        help="package directory to analyze (default: the installed repro/)",
    )
    p.add_argument(
        "--package",
        default="repro",
        help="dotted package name of --root (default repro)",
    )
    p.add_argument(
        "--json",
        type=Path,
        metavar="PATH",
        help="also write the machine-checkable certificate JSON here",
    )
    p.add_argument(
        "--list-allowlist",
        action="store_true",
        help="print every allowlisted sink with its justification",
    )
    p.add_argument(
        "-q", "--quiet", action="store_true", help="only print failures"
    )
    p.add_argument(
        "-v", "--verbose", action="store_true",
        help="print allowlist justifications inline",
    )
    return p


def _run_negative_control(quiet: bool) -> int:
    cert = negative_control_certificate()
    kinds = {v.effect.kind for v in cert.violations}
    missing = [k for k in IMPURE_FIXTURE_EXPECTED_KINDS if k not in kinds]
    if cert.ok or missing:
        print(
            "NEGATIVE CONTROL FAILED: the impure fixture was not "
            f"convicted (missing kinds: {missing or 'all'}) -- the "
            "purity analyzer is vacuous"
        )
        return 1
    if not quiet:
        print("negative control convicted as required")
        for v in cert.violations:
            print(f"  witness: {v.witness()}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit status."""
    args = _parser().parse_args(argv)
    if args.list_allowlist:
        for name, why in sorted(PURITY_ALLOWLIST.items()):
            print(f"{name}\n    {why}")
        return 0
    if not (args.certify or args.negative_control):
        _parser().error(
            "nothing to do: pass --certify, --negative-control and/or "
            "--list-allowlist"
        )

    failures = 0
    if args.certify:
        if not args.root.is_dir():
            print(f"flow: no such package root: {args.root}", file=sys.stderr)
            return 2
        analysis = ProjectAnalysis.from_package(args.root, args.package)
        entries = tuple(args.entry) if args.entry else DEFAULT_ENTRY_POINTS
        cert = certify(analysis, entries=entries)
        if args.json is not None:
            args.json.parent.mkdir(parents=True, exist_ok=True)
            args.json.write_text(
                json.dumps(cert.to_dict(), indent=2) + "\n", encoding="utf-8"
            )
        if not cert.ok or not args.quiet:
            print(cert.render(verbose=args.verbose))
        if not cert.ok:
            failures += 1

    if args.negative_control or args.certify:
        # --certify always exercises the negative control, so a green
        # gate also certifies the analyzer itself is alive.
        failures += _run_negative_control(args.quiet)

    return 0 if failures == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
