"""Interprocedural purity & fork-safety analysis (``repro.verify.flow``).

PR 6's sweep service claims a cached result is byte-equal to fresh
recomputation.  That claim is only as sound as the *purity* of every
function reachable from :func:`repro.serve.compute.run_point_spec`:
one ``os.environ`` read, wall-clock draw or mutable-global dependence
anywhere in the compute closure silently poisons the content-addressed
cache.  In the spirit of the paper's approach -- prove the property of
the design, don't test instances of it -- this package certifies the
claim statically:

* :mod:`~repro.verify.flow.callgraph` -- conservative call graph over
  the ``src/repro`` AST (typed receivers, import tables, name-match
  fallback; over-approximates, never under-approximates);
* :mod:`~repro.verify.flow.effects` -- per-function ambient-effect
  summaries (env / wall-clock / unseeded RNG / filesystem /
  global-mutation / set-iteration-order);
* :mod:`~repro.verify.flow.purity` -- fixed propagation over the
  graph and the machine-checkable
  :class:`~repro.verify.flow.purity.PurityCertificate`, failing with a
  witness call chain (``run_point_spec -> build_point -> X reads
  os.environ``) plus a documented, justification-carrying allowlist
  (:mod:`~repro.verify.flow.allowlist`) for proven-benign sinks;
* :mod:`~repro.verify.flow.forksafety` -- supervisor concurrency lint
  rules RPV007-RPV010 (lock-before-fork, unsafe signal handlers, raw
  shared-array access, fork-under-lock), served through the standard
  :mod:`repro.verify.lint` front end;
* :mod:`~repro.verify.flow.negative` -- a seeded impure fixture (env
  read three calls deep) the analyzer must convict, so a vacuous
  checker cannot go green.

Command line::

    python -m repro.verify.flow --certify            # the CI gate
    python -m repro.verify.flow --negative-control   # prove it can fail
    python -m repro.verify.flow --list-allowlist
"""

from repro.verify.flow.allowlist import PURITY_ALLOWLIST
from repro.verify.flow.callgraph import FunctionNode, ProjectGraph
from repro.verify.flow.effects import EFFECT_KINDS, Effect, function_effects
from repro.verify.flow.forksafety import FORK_RULES, ForkSafetyScanner, scan_fork_safety
from repro.verify.flow.negative import (
    IMPURE_FIXTURE_ENTRY,
    IMPURE_FIXTURE_SOURCES,
    negative_control_certificate,
)
from repro.verify.flow.purity import (
    DEFAULT_ENTRY_POINTS,
    ProjectAnalysis,
    PurityCertificate,
    Violation,
    certify,
)

__all__ = [
    "DEFAULT_ENTRY_POINTS",
    "EFFECT_KINDS",
    "Effect",
    "FORK_RULES",
    "ForkSafetyScanner",
    "FunctionNode",
    "IMPURE_FIXTURE_ENTRY",
    "IMPURE_FIXTURE_SOURCES",
    "PURITY_ALLOWLIST",
    "ProjectAnalysis",
    "ProjectGraph",
    "PurityCertificate",
    "Violation",
    "certify",
    "function_effects",
    "negative_control_certificate",
    "scan_fork_safety",
]
