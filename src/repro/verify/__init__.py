"""Static verification of the paper's correctness claims.

The paper *proves* its correctness properties -- turnaround routing is
deadlock-free (Section 3.2.1), offers ``k**t`` shortest paths of length
``2(t+1)`` (Theorem 1), and cube networks partition into
contention-free, channel-balanced clusters (Lemma 1, Theorems 2-4).
The simulator had only ever *exercised* those properties dynamically: a
routing or topology regression surfaced as a mysterious
``DeadlockError`` mid-sweep.  This package turns every theorem into a
machine-checked, pre-flight gate:

* :mod:`repro.verify.cdg` -- builds the **channel dependency graph** of
  a live :class:`~repro.wormhole.network.SimNetwork` by enumerating
  every legal routing decision, and checks the Dally-Seitz acyclicity
  condition with a concrete cycle witness on failure;
* :mod:`repro.verify.properties` -- exhaustive path-count /
  path-length / partitionability checks per network configuration,
  bundled into a :class:`~repro.verify.properties.VerificationReport`;
* :mod:`repro.verify.lint` -- an AST linter for simulator hazards
  (raw ``random.*``, wall-clock time, float ``==`` on sim time,
  mutable default arguments, holds without a release path), run by
  ``tools/lint_sim.py`` and CI;
* :mod:`repro.verify.sanitizer` -- an opt-in (``REPRO_SANITIZE=1``)
  runtime sanitizer asserting flit conservation, buffer occupancy
  bounds and acquire/release pairing every cycle;
* :mod:`repro.verify.negative` -- a deliberately *cyclic* routing
  variant the CDG verifier must reject (the checker's negative
  control).

Command line::

    python -m repro.verify --network bmin --k 2 --n 4
    python -m repro.verify --all-small       # every k**n <= 64 config
    python -m repro.verify --negative-control
"""

from repro.verify.cdg import (
    CDGResult,
    CyclicRouteError,
    build_cdg,
    build_escape_cdg,
    check_acyclic,
    check_escape_acyclic,
    check_escape_coverage,
    enumerate_routes,
    find_cycle_witness,
    iter_escape_dependencies,
)
from repro.verify.negative import (
    BrokenDatelineTorus,
    EscapelessNetwork,
    ReascendingBidirectionalNetwork,
    build_direct_negative_control,
    build_negative_control,
)
from repro.verify.properties import (
    CheckResult,
    VerificationReport,
    all_small_configs,
    all_small_direct_configs,
    verify_config,
    verify_network,
)
from repro.verify.sanitizer import Sanitizer, SanitizerError, sanitize_enabled

__all__ = [
    "BrokenDatelineTorus",
    "CDGResult",
    "CheckResult",
    "CyclicRouteError",
    "EscapelessNetwork",
    "ReascendingBidirectionalNetwork",
    "Sanitizer",
    "SanitizerError",
    "VerificationReport",
    "all_small_configs",
    "all_small_direct_configs",
    "build_cdg",
    "build_direct_negative_control",
    "build_escape_cdg",
    "build_negative_control",
    "check_acyclic",
    "check_escape_acyclic",
    "check_escape_coverage",
    "enumerate_routes",
    "find_cycle_witness",
    "iter_escape_dependencies",
    "sanitize_enabled",
    "verify_config",
    "verify_network",
]
