"""Command-line interface: ``python -m repro.verify``.

Examples::

    # one configuration
    python -m repro.verify --network bmin --k 2 --n 4
    python -m repro.verify --network dmin --k 4 --n 3 --topology cube

    # certify every k**n <= 64 configuration (the CI gate)
    python -m repro.verify --all-small

    # prove the checker is not vacuous
    python -m repro.verify --negative-control

Exit status is 0 iff every requested check passed (for the negative
control: iff the verifier *rejected* the cyclic routing variant).
"""

from __future__ import annotations

import argparse
import sys
import time  # lint-sim: ignore[RPV002] -- wall-clock CLI reporting
from typing import Optional, Sequence

from repro.verify.cdg import check_acyclic, check_escape_acyclic
from repro.verify.negative import (
    build_direct_negative_control,
    build_negative_control,
)
from repro.verify.properties import (
    all_small_configs,
    all_small_direct_configs,
    verify_config,
)


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description=(
            "Statically verify the paper's correctness claims -- "
            "deadlock freedom (CDG acyclicity), Theorem 1 path "
            "count/length, Lemma 1 / Theorems 2-4 partitionability -- "
            "against the live simulator networks."
        ),
    )
    p.add_argument(
        "--network",
        choices=("tmin", "dmin", "vmin", "bmin", "mesh3d", "torus3d"),
        help="network kind to verify (with --k/--n)",
    )
    p.add_argument("--k", type=int, default=2, help="switch radix (default 2)")
    p.add_argument("--n", type=int, default=3, help="stages (default 3)")
    p.add_argument(
        "--topology",
        choices=("cube", "butterfly", "omega", "flip", "baseline"),
        default="cube",
        help="Delta topology for unidirectional kinds (default cube)",
    )
    p.add_argument(
        "--dilation", type=int, default=2, help="DMIN dilation (default 2)"
    )
    p.add_argument(
        "--virtual-channels",
        type=int,
        default=2,
        help="VMIN virtual channels (default 2)",
    )
    p.add_argument(
        "--router",
        choices=("dor", "adaptive"),
        default="dor",
        help="routing function for the direct kinds (default dor)",
    )
    p.add_argument(
        "--vlink-slowdown",
        type=int,
        default=1,
        help="vertical-link slowdown for the direct kinds (default 1)",
    )
    p.add_argument(
        "--all-small",
        action="store_true",
        help=(
            "verify every TMIN/DMIN/VMIN/BMIN config with k**n <= 64 "
            "plus every small mesh3d/torus3d config under both routers"
        ),
    )
    p.add_argument(
        "--max-nodes",
        type=int,
        default=64,
        help="node ceiling for --all-small (default 64)",
    )
    p.add_argument(
        "--negative-control",
        action="store_true",
        help=(
            "run the deliberately cyclic routing fixture; succeeds iff "
            "the verifier rejects it with a cycle witness"
        ),
    )
    p.add_argument(
        "--skip-partitions",
        action="store_true",
        help="skip the Lemma 1 / Theorems 2-4 partition checks",
    )
    p.add_argument(
        "--skip-paths",
        action="store_true",
        help="skip the Theorem 1 path count/length checks",
    )
    p.add_argument(
        "--json",
        metavar="PATH",
        help=(
            "also write a machine-readable certificate (per-config "
            "check outcomes + negative-control witnesses) -- the CI "
            "artifact"
        ),
    )
    p.add_argument(
        "-q", "--quiet", action="store_true", help="only print failures"
    )
    return p


def _run_negative_control(quiet: bool, cert: Optional[dict] = None) -> int:
    net = build_negative_control(k=2, n=3)
    result = check_acyclic(net)
    if result.acyclic:
        print(
            "NEGATIVE CONTROL FAILED: the re-ascending BMIN was "
            "certified acyclic -- the CDG verifier is vacuous"
        )
        return 1
    if not quiet:
        print("negative control rejected as required")
        print(f"  cycle witness: {result.witness()}")
    broken = build_direct_negative_control()
    escape = check_escape_acyclic(broken)
    if escape.acyclic:
        print(
            "NEGATIVE CONTROL FAILED: the broken-dateline torus was "
            "certified escape-acyclic -- the escape verifier is vacuous"
        )
        return 1
    if not quiet:
        print("direct negative control rejected as required")
        print(f"  cycle witness: {escape.witness()}")
    if cert is not None:
        cert["negative_controls"] = [
            {
                "name": "reascending-bmin",
                "rejected": True,
                "witness": result.witness(),
            },
            {
                "name": "broken-dateline-torus",
                "rejected": True,
                "witness": escape.witness(),
            },
        ]
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit status."""
    args = _parser().parse_args(argv)
    if not (args.network or args.all_small or args.negative_control):
        _parser().error(
            "nothing to do: pass --network, --all-small and/or "
            "--negative-control"
        )

    failures = 0
    started = time.perf_counter()  # lint-sim: ignore[RPV002]
    # Each entry: (kind, k, n, topology-or-router); the direct kinds
    # carry their router in the last slot.
    direct_kinds = ("mesh3d", "torus3d")
    configs: list[tuple[str, int, int, str]] = []
    if args.network:
        last = (
            args.router if args.network in direct_kinds else args.topology
        )
        configs.append((args.network, args.k, args.n, last))
    if args.all_small:
        configs.extend(all_small_configs(max_nodes=args.max_nodes))
        configs.extend(all_small_direct_configs(max_nodes=args.max_nodes))

    cert: Optional[dict] = {"configs": []} if args.json else None
    for kind, k, n, last in configs:
        direct = kind in direct_kinds
        report = verify_config(
            kind,
            k,
            n,
            topology="cube" if direct else last,
            dilation=args.dilation,
            virtual_channels=args.virtual_channels,
            router=last if direct else "dor",
            vlink_slowdown=args.vlink_slowdown if direct else 1,
            check_paths=not args.skip_paths,
            check_partitions=not args.skip_partitions,
        )
        if not report.ok:
            failures += 1
            print(report)
        elif not args.quiet:
            print(report)
        if cert is not None:
            cert["configs"].append(
                {
                    "config": report.config,
                    "ok": report.ok,
                    "checks": [
                        {"name": c.name, "ok": c.ok, "detail": c.detail}
                        for c in report.checks
                    ],
                }
            )

    if args.negative_control or args.all_small:
        # --all-small always exercises the negative control so a green
        # run also certifies the checker itself is alive.
        failures += _run_negative_control(args.quiet, cert)

    elapsed = time.perf_counter() - started  # lint-sim: ignore[RPV002]
    verdict = "OK" if failures == 0 else f"{failures} FAILURE(S)"
    print(
        f"verified {len(configs)} configuration(s)"
        f"{' + negative control' if args.negative_control or args.all_small else ''}"
        f" in {elapsed:.1f}s: {verdict}"
    )
    if cert is not None:
        import json
        import pathlib

        cert["ok"] = failures == 0
        path = pathlib.Path(args.json)
        path.write_text(json.dumps(cert, indent=2) + "\n")
        if not args.quiet:
            print(f"(certificate written to {path})")
    return 0 if failures == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
