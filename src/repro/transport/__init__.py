"""End-to-end reliable transport over the lossy wormhole fabric.

The fabric counters (sheds, faults, stall-aborts) are per-hop losses
that open-loop sources silently eat.  :mod:`repro.transport` closes the
loop: per-flow sequence numbers, cumulative + selective acks carried as
small reverse-direction messages through the *same* fabric, timeout
retransmission with seeded exponential backoff, duplicate suppression,
and AIMD send windows -- so overload robustness becomes an end-to-end
property (delivered-exactly-once goodput) rather than a per-hop one.
"""

from repro.transport.reliable import ReliableTransport, TransportConfig

__all__ = ["ReliableTransport", "TransportConfig"]
