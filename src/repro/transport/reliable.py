"""Deterministic end-to-end reliability over ``SimNetwork`` endpoints.

:class:`ReliableTransport` turns the fabric's loss signals (sheds,
fault aborts, watchdog stall-aborts) into a closed loop the way real
endpoints do:

* every message belongs to a *flow* (one ``(src, dst)`` pair) and gets
  a per-flow sequence number;
* acknowledgements are cumulative-plus-selective and travel as real
  small reverse-direction packets through the *same* fabric (so acks
  can themselves be shed or aborted -- a lost ack is recovered by the
  data retransmission timer, never retried on its own);
* unacked segments retransmit on timeout with exponential backoff and
  seeded ± jitter (one RNG draw per scheduling decision, from the
  transport's *own* forked stream, so engine allocation draws are
  untouched and all three engine tiers stay bit-identical);
* the send window is AIMD: +``ai_step`` per cumulative-advance ack,
  halved on every loss signal -- the end-to-end counterpart of the
  fabric-level AIMD governor (:mod:`repro.stability.governor`);
* the receiver suppresses duplicates (retransmissions that crossed a
  slow original, or data whose ack was lost) and re-acks them;
* a flow whose segment exhausts ``max_attempts`` is *aborted* --
  surfaced in ``stats.flows_aborted`` and per-message
  :attr:`~ReliableTransport.outcomes`, never a hang: the unacked
  backlog is cancelled and the flow stays usable for later sends.

Like :class:`repro.faults.recovery.SourceRetry`, the transport is a
cold-kind bus subscriber (``deliver``/``abort``/``shed`` only), so the
per-flit hot path pays nothing (``bus.hot`` stays False).  Bus
callbacks fire inside the engine's cycle step, so they only do
bookkeeping and spawn simulation processes whose first statement is a
``timeout`` -- every ``engine.offer`` happens between cycles.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Generator, Iterator, Optional

from repro.sim.rng import RandomStream
from repro.wormhole.engine import WormholeEngine
from repro.wormhole.packet import Packet, PacketState

FlowKey = tuple[int, int]


@dataclass(frozen=True)
class TransportConfig:
    """Transport knobs; defaults mirror ``TRANSPORT_DEFAULTS`` in serve.

    ``max_attempts`` counts total injections of one segment (first try
    included), so ``max_attempts=1`` aborts the flow on the first loss.
    """

    window: int = 4            # initial send window (segments in flight)
    max_window: int = 32       # additive-increase cap
    ai_step: int = 1           # window += ai_step per cum-advancing ack
    rto_base: float = 256.0    # initial retransmission timeout (cycles)
    rto_factor: float = 2.0    # exponential backoff per loss signal
    rto_max: float = 8192.0    # backoff cap
    jitter: float = 0.25       # +- fraction on every retransmit delay
    max_attempts: int = 8      # injections per segment before flow abort
    ack_length: int = 4        # flits per acknowledgement packet
    ack_delay: float = 4.0     # cycles between delivery and its ack

    def __post_init__(self) -> None:
        if self.window < 1 or self.max_window < self.window:
            raise ValueError("need 1 <= window <= max_window")
        if self.ai_step < 1:
            raise ValueError("ai_step must be >= 1")
        if self.rto_base <= 0 or self.rto_factor < 1.0 or self.rto_max <= 0:
            raise ValueError("need rto_base > 0, rto_factor >= 1, rto_max > 0")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.ack_length < 1:
            raise ValueError("ack_length must be >= 1")
        if self.ack_delay <= 0:
            raise ValueError("ack_delay must be positive")


class _Segment:
    """One unacked message on the wire (or awaiting retransmission)."""

    __slots__ = ("seq", "length", "attempts", "rto", "timer_token", "live_pid")

    def __init__(self, seq: int, length: int, rto: float) -> None:
        self.seq = seq
        self.length = length
        self.attempts = 0          # injections so far
        self.rto = rto             # current timeout / backoff base
        self.timer_token = 0       # bumped to invalidate armed timers
        self.live_pid = -1         # newest injection's pid (-1 = none)


class _Flow:
    """Sender + receiver state for one ``(src, dst)`` pair."""

    __slots__ = (
        "key", "next_seq", "buffer", "inflight", "window",
        "rcv_cum", "rcv_ooo", "cancelled", "pump_pending",
    )

    def __init__(self, key: FlowKey, window: int) -> None:
        self.key = key
        self.next_seq = 0
        #: queued (seq, length) not yet allowed into the window
        self.buffer: deque[tuple[int, int]] = deque()
        #: seq -> live _Segment
        self.inflight: dict[int, _Segment] = {}
        self.window = window
        #: highest seq with every seq' <= it consumed (cumulative ack)
        self.rcv_cum = -1
        #: consumed seqs above the cumulative point (out of order)
        self.rcv_ooo: set[int] = set()
        #: seqs abandoned by a flow abort (late arrivals suppressed)
        self.cancelled: set[int] = set()
        self.pump_pending = False

    def settled(self) -> bool:
        return not self.buffer and not self.inflight


class ReliableTransport:
    """Installs end-to-end acked delivery onto a live engine.

    Usage::

        tp = ReliableTransport(engine, TransportConfig(), rng)
        ... tp.send(src, dst, length) from source processes ...
        tp.quiesce()           # drain fabric + retransmit pipeline
        tp.delivered_ratio()   # unique messages delivered end to end

    :attr:`outcomes` maps ``(src, dst, seq)`` to ``"delivered"`` or
    ``"aborted"`` once settled; :meth:`send` returns that key.
    """

    def __init__(
        self,
        engine: WormholeEngine,
        config: Optional[TransportConfig] = None,
        rng: Optional[RandomStream] = None,
    ) -> None:
        self.engine = engine
        self.env = engine.env
        self.config = config if config is not None else TransportConfig()
        self.rng = rng if rng is not None else RandomStream(0, name="transport")
        self._flows: dict[FlowKey, _Flow] = {}
        #: data pid -> (flow key, seq, length); stale pids stay
        #: registered so a slow original delivering after a
        #: retransmit counts as a dup.
        self._data_pids: dict[int, tuple[FlowKey, int, int]] = {}
        #: ack pid -> (flow key, cum, sack) snapshotted at offer time
        self._ack_pids: dict[int, tuple[FlowKey, int, int]] = {}
        #: (src, dst, seq) -> "delivered" | "aborted"
        self.outcomes: dict[tuple[int, int, int], str] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_aborted = 0
        self.flows_aborted = 0
        self.acks_lost = 0
        #: deferred actions (retransmits / pumps / ack sends) not yet run
        self.pending = 0
        # Cold-kind subscriber (deliver/abort/shed): bus.hot stays False.
        engine.bus.attach(self)

    # -- sending -----------------------------------------------------------

    def send(self, src: int, dst: int, length: int) -> tuple[int, int, int]:
        """Enqueue one reliable message; returns its outcome key.

        Never blocks and never refuses: admission pressure is absorbed
        by the window/buffer and the backoff machinery.
        """
        if src == dst:
            raise ValueError("transport send needs src != dst")
        if length < 1:
            raise ValueError("length must be >= 1")
        flow = self._flow((src, dst))
        seq = flow.next_seq
        flow.next_seq += 1
        flow.buffer.append((seq, length))
        self.messages_sent += 1
        self._pump(flow)
        return (src, dst, seq)

    def _flow(self, key: FlowKey) -> _Flow:
        flow = self._flows.get(key)
        if flow is None:
            flow = self._flows[key] = _Flow(key, self.config.window)
        return flow

    def _pump(self, flow: _Flow) -> None:
        """Move buffered messages into the window (offers packets)."""
        while flow.buffer and len(flow.inflight) < flow.window:
            seq, length = flow.buffer.popleft()
            seg = _Segment(seq, length, self.config.rto_base)
            flow.inflight[seq] = seg
            self._inject(flow, seg)

    def _inject(self, flow: _Flow, seg: _Segment) -> None:
        seg.attempts += 1
        if seg.attempts > 1:
            self.engine.stats.retransmitted_packets += 1
        src, dst = flow.key
        packet = self.engine.offer(src, dst, seg.length)
        if packet is None or packet.state is PacketState.SHED:
            # Blocked admission refused the injection, or shed-newest
            # dropped it at the door.  The attempt is spent; back off
            # (the shed event for our own clone is ignored by on_shed
            # because the pid was never registered).
            self._on_loss(flow, seg, shrink=packet is not None)
            return
        seg.live_pid = packet.pid
        self._data_pids[packet.pid] = (flow.key, seg.seq, seg.length)
        self.env.process(
            self._rto_timer(flow, seg, seg.timer_token),
            name=f"rto-{src}-{dst}-{seg.seq}",
        )

    # -- bus callbacks (bookkeeping + process spawning only) ---------------

    def on_deliver(self, t: float, p: Packet) -> None:
        data = self._data_pids.pop(p.pid, None)
        if data is not None:
            self._data_arrived(*data)
            return
        ack = self._ack_pids.pop(p.pid, None)
        if ack is not None:
            self._ack_arrived(*ack)

    def on_abort(self, t: float, p: Packet) -> None:
        self._packet_lost(p.pid)

    def on_shed(self, t: float, p: Packet) -> None:
        # Covers shed-oldest victims of our *own* later offers too: any
        # registered pid that gets shed takes the loss path.
        self._packet_lost(p.pid)

    def _packet_lost(self, pid: int) -> None:
        data = self._data_pids.pop(pid, None)
        if data is not None:
            key, seq, _length = data
            flow = self._flows[key]
            seg = flow.inflight.get(seq)
            if seg is not None and seg.live_pid == pid:
                self._on_loss(flow, seg, shrink=True)
            return
        if self._ack_pids.pop(pid, None) is not None:
            # A lost ack is never retried; the data RTO recovers.
            self.acks_lost += 1

    # -- loss / retransmission ---------------------------------------------

    def _on_loss(self, flow: _Flow, seg: _Segment, *, shrink: bool) -> None:
        if flow.inflight.get(seg.seq) is not seg:
            return
        seg.timer_token += 1
        seg.live_pid = -1
        if shrink:
            flow.window = max(1, flow.window // 2)
        if seg.attempts >= self.config.max_attempts:
            self._abort_flow(flow)
            return
        delay = self._jittered(seg.rto)
        seg.rto = min(seg.rto * self.config.rto_factor, self.config.rto_max)
        self.pending += 1
        self.env.process(
            self._retransmit(flow, seg, seg.timer_token, delay),
            name=f"retx-{flow.key[0]}-{flow.key[1]}-{seg.seq}",
        )

    def _jittered(self, base: float) -> float:
        """One RNG draw per retransmit-scheduling decision."""
        if self.config.jitter:
            base *= 1.0 + self.config.jitter * (2.0 * self.rng.random() - 1.0)
        return max(base, 1.0)

    def _retransmit(
        self, flow: _Flow, seg: _Segment, token: int, delay: float
    ) -> Generator[Any, Any, None]:
        yield self.env.timeout(delay)
        self.pending -= 1
        if flow.inflight.get(seg.seq) is not seg or seg.timer_token != token:
            return
        self._inject(flow, seg)

    def _rto_timer(
        self, flow: _Flow, seg: _Segment, token: int
    ) -> Generator[Any, Any, None]:
        yield self.env.timeout(seg.rto)
        if flow.inflight.get(seg.seq) is not seg or seg.timer_token != token:
            return
        # No ack and no loss signal within the timeout: assume loss
        # (the original may still be crawling through congestion; a
        # crossing duplicate is suppressed at the receiver).
        self.engine.stats.rto_fires += 1
        # The slow original (if any) stays registered: its eventual
        # deliver counts as a duplicate, and because _on_loss clears
        # live_pid, its later abort/shed is ignored as stale.
        self._on_loss(flow, seg, shrink=True)

    def _abort_flow(self, flow: _Flow) -> None:
        """Give up the flow's unacked backlog; never a hang."""
        self.flows_aborted += 1
        self.engine.stats.flows_aborted += 1
        src, dst = flow.key
        for seq, seg in flow.inflight.items():
            seg.timer_token += 1
            flow.cancelled.add(seq)
            if self.outcomes.setdefault((src, dst, seq), "aborted") == "aborted":
                self.messages_aborted += 1
        flow.inflight.clear()
        for seq, _length in flow.buffer:
            flow.cancelled.add(seq)
            if self.outcomes.setdefault((src, dst, seq), "aborted") == "aborted":
                self.messages_aborted += 1
        flow.buffer.clear()
        flow.window = 1

    # -- receiver ----------------------------------------------------------

    def _data_arrived(self, key: FlowKey, seq: int, length: int) -> None:
        flow = self._flows[key]
        if seq <= flow.rcv_cum or seq in flow.rcv_ooo or seq in flow.cancelled:
            # Duplicate (retransmission crossed the original, or the
            # ack was lost) or a cancelled straggler: suppress, re-ack.
            self.engine.stats.dup_acks += 1
        else:
            flow.rcv_ooo.add(seq)
            while flow.rcv_cum + 1 in flow.rcv_ooo or (
                flow.rcv_cum + 1 in flow.cancelled
            ):
                flow.rcv_cum += 1
                flow.rcv_ooo.discard(flow.rcv_cum)
            src, dst = key
            self.engine.stats.goodput_flits += length
            self.messages_delivered += 1
            self.outcomes[(src, dst, seq)] = "delivered"
        self.pending += 1
        self.env.process(
            self._send_ack(flow, seq), name=f"ack-{key[0]}-{key[1]}-{seq}"
        )

    def _send_ack(self, flow: _Flow, sack: int) -> Generator[Any, Any, None]:
        yield self.env.timeout(self.config.ack_delay)
        self.pending -= 1
        # Snapshot the receive state at send time (delayed acks carry
        # the freshest cumulative point).
        cum = flow.rcv_cum
        src, dst = flow.key
        packet = self.engine.offer(dst, src, self.config.ack_length)
        if packet is None or packet.state is PacketState.SHED:
            self.acks_lost += 1
            return
        self.engine.stats.ack_packets += 1
        self._ack_pids[packet.pid] = (flow.key, cum, sack)

    # -- sender ack processing ---------------------------------------------

    def _ack_arrived(self, key: FlowKey, cum: int, sack: int) -> None:
        flow = self._flows[key]
        acked = [seq for seq in flow.inflight if seq <= cum]
        if sack in flow.inflight and sack > cum:
            acked.append(sack)
        if not acked:
            return
        for seq in acked:
            seg = flow.inflight.pop(seq)
            seg.timer_token += 1
            if seg.live_pid >= 0:
                self._data_pids.pop(seg.live_pid, None)
        flow.window = min(
            flow.window + self.config.ai_step, self.config.max_window
        )
        if flow.buffer and not flow.pump_pending:
            flow.pump_pending = True
            self.pending += 1
            self.env.process(
                self._deferred_pump(flow), name=f"pump-{key[0]}-{key[1]}"
            )

    def _deferred_pump(self, flow: _Flow) -> Generator[Any, Any, None]:
        yield self.env.timeout(1.0)
        self.pending -= 1
        flow.pump_pending = False
        self._pump(flow)

    # -- reporting / draining ----------------------------------------------

    def flows(self) -> Iterator[FlowKey]:
        return iter(self._flows)

    def delivered_ratio(self) -> float:
        """Fraction of settled messages that ended delivered."""
        if not self.outcomes:
            return float("nan")
        done = sum(1 for o in self.outcomes.values() if o == "delivered")
        return done / len(self.outcomes)

    @property
    def idle(self) -> bool:
        return self.pending == 0 and all(
            f.settled() for f in self._flows.values()
        )

    def quiesce(self, max_cycles: int = 1_000_000) -> None:
        """Drain the fabric *and* the transport pipeline.

        Keeps running while backoff timers or windowed backlogs hold
        messages outside the network.  Raises if the combined system
        fails to settle -- the "never a hang" guarantee is enforced,
        not assumed.
        """
        deadline = self.env.now + max_cycles
        self.engine.start()
        while (not self.engine.idle or not self.idle) and self.env.now < deadline:
            self.env.run(until=min(self.env.now + 256, deadline))
        if not self.engine.idle or not self.idle:
            backlog = sum(
                len(f.buffer) + len(f.inflight) for f in self._flows.values()
            )
            raise RuntimeError(
                f"transport failed to quiesce within {max_cycles} cycles "
                f"({self.engine.in_flight} in flight, {backlog} unacked, "
                f"{self.pending} deferred)"
            )

    def __repr__(self) -> str:
        return (
            f"<ReliableTransport flows={len(self._flows)} "
            f"sent={self.messages_sent} delivered={self.messages_delivered} "
            f"aborted={self.messages_aborted} pending={self.pending}>"
        )
