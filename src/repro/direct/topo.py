"""Geometry of k-ary n-dimensional mesh and torus topologies.

A :class:`DirectTopology` answers the coordinate-arithmetic questions
the direct networks and their verifier ask -- neighbor lookup, minimal
directions, hop distances, diameter, average distance -- with no
channel or simulation state involved, so the same object backs the
network builder, the CDG walker, and the independent graph cross-check
(:func:`repro.topology.graph.direct_to_digraph`).

Node numbering: dimension 0 is the fastest-varying digit, so node
``i`` sits at coordinates ``(i % k, (i // k) % k, ...)`` -- the same
digit convention :mod:`repro.topology.permutations` uses for the MINs.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterator, Optional

#: Display names for the first dimensions ("x+", "y-", ... in channel
#: labels); higher dimensions fall back to "d3", "d4", ...
DIM_NAMES = ("x", "y", "z")


def dim_name(dim: int) -> str:
    """Short display name of a dimension ("x", "y", "z", "d3", ...)."""
    return DIM_NAMES[dim] if dim < len(DIM_NAMES) else f"d{dim}"


@dataclass(frozen=True)
class DirectTopology:
    """A k-ary n-dimensional mesh (``wrap=False``) or torus (``True``)."""

    k: int
    n: int = 3
    wrap: bool = False

    def __post_init__(self) -> None:
        if self.k < 2:
            raise ValueError("a direct topology needs k >= 2 nodes per dimension")
        if self.n < 1:
            raise ValueError("a direct topology needs n >= 1 dimensions")

    @property
    def N(self) -> int:
        """Number of nodes."""
        return self.k**self.n

    def coords(self, node: int) -> tuple[int, ...]:
        """Node id -> per-dimension coordinates (dimension 0 first)."""
        out = []
        for _ in range(self.n):
            node, c = divmod(node, self.k)
            out.append(c)
        return tuple(out)

    def node_at(self, coords: tuple[int, ...]) -> int:
        """Per-dimension coordinates -> node id."""
        node = 0
        for c in reversed(coords):
            node = node * self.k + c
        return node

    def neighbor(self, node: int, dim: int, sign: int) -> Optional[int]:
        """The node one hop away in ``dim`` / ``sign``, or None at a mesh edge."""
        c = (node // self.k**dim) % self.k
        nc = c + sign
        if self.wrap:
            nc %= self.k
        elif not 0 <= nc < self.k:
            return None
        return node + (nc - c) * self.k**dim

    def links(self) -> Iterator[tuple[int, int, int, int]]:
        """Every directed physical link as ``(u, v, dim, sign)``.

        A k=2 torus ring yields two *parallel* links per node pair (the
        + and - wires are physically distinct), matching the channel
        set :class:`repro.direct.network.DirectNetwork` builds.
        """
        for u in range(self.N):
            for dim in range(self.n):
                for sign in (1, -1):
                    v = self.neighbor(u, dim, sign)
                    if v is not None:
                        yield (u, v, dim, sign)

    def dim_distance(self, a: int, b: int, dim: int) -> int:
        """Minimal hops between ``a`` and ``b`` along one dimension."""
        ca = (a // self.k**dim) % self.k
        cb = (b // self.k**dim) % self.k
        d = abs(cb - ca)
        return min(d, self.k - d) if self.wrap else d

    def distance(self, a: int, b: int) -> int:
        """Minimal hop count between two nodes."""
        return sum(self.dim_distance(a, b, dim) for dim in range(self.n))

    def min_directions(self, cur: int, dst: int) -> list[tuple[int, int]]:
        """Productive ``(dim, sign)`` hops on some minimal path cur -> dst.

        Ordered by ascending dimension; on a torus tie (even k, the
        destination exactly k/2 away) both signs are minimal and + is
        listed first.  Empty exactly when ``cur == dst``.
        """
        out = []
        cc, dc = self.coords(cur), self.coords(dst)
        for dim in range(self.n):
            c, d = cc[dim], dc[dim]
            if c == d:
                continue
            if not self.wrap:
                out.append((dim, 1 if d > c else -1))
                continue
            fwd = (d - c) % self.k
            bwd = self.k - fwd
            if fwd <= bwd:
                out.append((dim, 1))
            if bwd <= fwd:
                out.append((dim, -1))
        return out

    @cached_property
    def diameter(self) -> int:
        """Maximum minimal-hop distance over all node pairs."""
        per_dim = self.k // 2 if self.wrap else self.k - 1
        return self.n * per_dim

    @cached_property
    def average_distance(self) -> float:
        """Mean minimal-hop distance over ordered pairs ``src != dst``.

        Dimensions are independent, so the total over all ordered node
        pairs is ``n * S1 * k**(2*(n-1))`` where S1 sums the one-
        dimensional distance over all k**2 coordinate pairs; same-node
        pairs contribute zero and are excluded from the denominator.
        """
        s1 = 0
        for a in range(self.k):
            for b in range(self.k):
                d = abs(b - a)
                s1 += min(d, self.k - d) if self.wrap else d
        total = self.n * s1 * self.k ** (2 * (self.n - 1))
        return total / (self.N * (self.N - 1))
