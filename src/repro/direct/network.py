"""Direct-topology wormhole networks: DOR and credit-aware adaptive.

Channel model
-------------
Every directed link of the :class:`~repro.direct.topo.DirectTopology`
carries one single-lane :class:`~repro.wormhole.channel.PhysChannel`
per *virtual lane*, labelled ``"x+[1,2,0].e0"`` (dimension, direction,
source-node coordinates, lane tag):

* ``.e{c}`` -- escape lanes, restricted to dimension-order routing.
  A mesh needs one class per direction; a torus needs two (the
  dateline scheme below).
* ``.a{j}`` -- fully adaptive lanes (adaptive router only).

Modeling each virtual lane as its own channel lets the routing
function address lanes individually (pick an escape *class*, score
adaptive lanes) -- something the engine's any-free-lane allocation on
a shared wire cannot express.  The cost is that lanes of one link no
longer share a wire's cycle budget; ``vlink_slowdown`` restores a
bandwidth knob where it matters most (slow vertical/TSV links in the
last dimension, cf. 3D-stacked NoCs).

Deadlock freedom (what ``repro.verify`` certifies)
--------------------------------------------------
DOR on a mesh orders channels by (dimension, direction, position):
every dependency increases the rank, so the CDG is acyclic.  On a
torus a ring's wrap link would close a cycle; the *dateline* scheme
splits each direction's ring into two escape classes -- class 0
strictly before the packet's wrap crossing (``cur > dst`` going +,
``cur < dst`` going -), class 1 after -- and a packet's class can only
step 0 -> 1 (at the wrap), never back, so the rank
(dimension, direction, class, position) still strictly increases.

The adaptive router's full CDG is *expected* to be cyclic -- that is
precisely why escape lanes exist.  Deadlock freedom follows from
Duato's theorem: every reachable routing state keeps an escape
candidate (coverage), and the escape sub-CDG -- including *indirect*
dependencies through adaptive lanes a packet may hold in between --
is acyclic.  Minimal adaptivity keeps the rank argument valid for the
indirect edges too: a resolved dimension never un-resolves, within a
dimension a packet's travel direction never flips, and the dateline
class never reverts.  :func:`repro.verify.cdg.check_escape_acyclic`
and :func:`repro.verify.cdg.check_escape_coverage` machine-check both
claims; a deliberately broken dateline
(:func:`repro.verify.negative.build_direct_negative_control`) must
yield a cycle witness.
"""

from __future__ import annotations

from repro.direct.topo import DirectTopology, dim_name
from repro.wormhole.channel import PhysChannel
from repro.wormhole.network import NetworkKind, SimNetwork
from repro.wormhole.packet import Packet

#: Supported routing functions.
ROUTERS = ("dor", "adaptive")


class DirectNetwork(SimNetwork):
    """3D mesh / torus with dimension-order or adaptive minimal routing.

    Parameters
    ----------
    topo:
        The mesh/torus geometry.
    router:
        "dor" (deterministic dimension-order; escape lanes only) or
        "adaptive" (minimal fully-adaptive over ``adaptive_lanes``
        lanes per link, credit-aware, escape fallback).
    adaptive_lanes:
        Fully adaptive lanes per directed link (adaptive router only).
    vlink_slowdown:
        Cycles per flit on last-dimension ("vertical") links; 1 means
        full speed.  Models the slower through-silicon vias of a
        3D-stacked fabric.
    """

    #: Routes can revisit a channel rank under adaptive routing (the
    #: full CDG is cyclic by design), so the engine's per-worm Phase B
    #: -- which assumes lanes are acquired in ascending topological
    #: order -- must stay off; the active-channel sweep handles any
    #: acquisition order bit-identically.
    worm_phase_ok = False

    def __init__(
        self,
        topo: DirectTopology,
        router: str = "dor",
        adaptive_lanes: int = 1,
        vlink_slowdown: int = 1,
    ) -> None:
        if router not in ROUTERS:
            raise ValueError(f"unknown router {router!r}; pick one of {ROUTERS}")
        if adaptive_lanes < 1:
            raise ValueError("adaptive_lanes must be >= 1")
        if vlink_slowdown < 1:
            raise ValueError("vlink_slowdown must be >= 1")
        self.topo = topo
        self.router = router
        self.adaptive_lanes = adaptive_lanes
        self.vlink_slowdown = vlink_slowdown
        self.kind = NetworkKind.TORUS3D if topo.wrap else NetworkKind.MESH3D
        self.N = topo.N
        #: Escape classes per direction: the torus dateline needs two.
        self.escape_classes = 2 if topo.wrap else 1

        self.dlv: list[PhysChannel] = [
            PhysChannel(f"dlv[{i}]", is_delivery=True, sink=i)
            for i in range(self.N)
        ]
        self.escape: dict[tuple[int, int, int, int], PhysChannel] = {}
        self.adaptive: dict[tuple[int, int, int], list[PhysChannel]] = {}
        #: node -> its outgoing fabric channels (all lanes, all links);
        #: the adaptive router's downstream-credit pool.
        self._out: list[list[PhysChannel]] = [[] for _ in range(self.N)]

        # Downstream-ish processing order for Phase B: delivery first,
        # then fabric lanes by descending dimension (DOR visits low
        # dimensions first, so high dimensions sit downstream), escape
        # class 1 (post-dateline) before class 0, injection last.
        ordered: list[PhysChannel] = list(self.dlv)
        for dim in range(topo.n - 1, -1, -1):
            slowdown = vlink_slowdown if dim == topo.n - 1 else 1
            for u in range(self.N):
                coords = ",".join(str(c) for c in topo.coords(u))
                for sign in (1, -1):
                    v = topo.neighbor(u, dim, sign)
                    if v is None:
                        continue
                    base = f"{dim_name(dim)}{'+' if sign > 0 else '-'}[{coords}]"
                    for cls in range(self.escape_classes - 1, -1, -1):
                        ch = PhysChannel(f"{base}.e{cls}", slowdown=slowdown)
                        ch.meta = (dim, sign, u, v, "esc", cls)
                        self.escape[(u, dim, sign, cls)] = ch
                        self._out[u].append(ch)
                        ordered.append(ch)
                    if router == "adaptive":
                        lanes = []
                        for j in range(adaptive_lanes):
                            ch = PhysChannel(f"{base}.a{j}", slowdown=slowdown)
                            ch.meta = (dim, sign, u, v, "adp", j)
                            lanes.append(ch)
                            self._out[u].append(ch)
                            ordered.append(ch)
                        self.adaptive[(u, dim, sign)] = lanes
        self.inj: list[PhysChannel] = [
            PhysChannel(f"inj[{i}]") for i in range(self.N)
        ]
        ordered.extend(self.inj)
        self._finalize_topo(ordered)

        #: Memoized (cur, dst) -> candidate list; callers never mutate
        #: the returned lists (same contract as the MIN path tables).
        self._cand: dict[tuple[int, int], list[PhysChannel]] = {}
        #: Per-node round-robin counters for adaptive tie-breaking.
        #: Instance state only -- deterministic and purity-safe; both
        #: engines call :meth:`preferred_lane` for the same headers in
        #: the same order, so the counters evolve identically.
        self._rr: list[int] = [0] * self.N

    # -- routing interface ------------------------------------------------

    def injection_channel(self, node: int) -> PhysChannel:
        return self.inj[node]

    def prepare(self, packet: Packet) -> None:
        """Routing state is just the current node."""
        packet.cur = packet.src

    def candidates(self, packet: Packet) -> list[PhysChannel]:
        """Adaptive lanes of every minimal direction, then the escape lane.

        At the destination the single candidate is the delivery
        channel.  The escape lane is always last, so the allocation
        policy can treat it as the fallback it is.
        """
        key = (packet.cur, packet.dst)
        cached = self._cand.get(key)
        if cached is None:
            cached = self._cand[key] = self._build_candidates(*key)
        return cached

    def _build_candidates(self, cur: int, dst: int) -> list[PhysChannel]:
        if cur == dst:
            return [self.dlv[cur]]
        out: list[PhysChannel] = []
        if self.router == "adaptive":
            for dim, sign in self.topo.min_directions(cur, dst):
                out.extend(self.adaptive[(cur, dim, sign)])
        out.append(self.escape[self._escape_hop(cur, dst)])
        return out

    def _escape_hop(self, cur: int, dst: int) -> tuple[int, int, int, int]:
        """The DOR-restricted escape hop: lowest unresolved dimension."""
        cc, dc = self.topo.coords(cur), self.topo.coords(dst)
        for dim in range(self.topo.n):
            c, d = cc[dim], dc[dim]
            if c == d:
                continue
            sign = self._dor_sign(c, d)
            return (cur, dim, sign, self._escape_class(c, d, sign))
        raise AssertionError("escape hop asked at the destination")

    def _dor_sign(self, c: int, d: int) -> int:
        """Deterministic minimal direction (torus tie resolves to +)."""
        if not self.topo.wrap:
            return 1 if d > c else -1
        fwd = (d - c) % self.topo.k
        return 1 if fwd <= self.topo.k - fwd else -1

    def _escape_class(self, c: int, d: int, sign: int) -> int:
        """Dateline class of the escape hop at coordinate ``c``.

        Class 0 strictly before the packet's wrap crossing, class 1
        after; a mesh never wraps and uses a single class.  Overridden
        by the verifier's negative control to prove the CDG check
        actually bites.
        """
        if not self.topo.wrap:
            return 0
        if sign > 0:
            return 0 if c > d else 1
        return 0 if c < d else 1

    def advance(self, packet: Packet, channel: PhysChannel) -> None:
        """The header moved to the link's downstream node."""
        meta = channel.meta
        if meta is not None:
            packet.cur = meta[3]

    # -- adaptive allocation policy ---------------------------------------

    def preferred_lane(self, packet: Packet, free: list, rng):
        """Credit-aware adaptive selection among free candidate lanes.

        Prefer adaptive lanes (the escape lane stays a fallback: it is
        only taken when it is the sole free candidate, in which case
        the engine never asks).  Among adaptive lanes, score each by
        its *downstream credit* -- the count of free outgoing fabric
        lanes at the link's far node, the local congestion signal a
        credit-based flow control would expose -- and take a max-score
        lane, breaking ties round-robin per source node.
        """
        if self.router != "adaptive":
            return None
        best: list = []
        best_score = -1
        for lane in free:
            meta = lane.channel.meta
            if meta is None or meta[4] != "adp":
                continue
            score = self._credits(meta[3])
            if score > best_score:
                best_score = score
                best = [lane]
            elif score == best_score:
                best.append(lane)
        if not best:
            return None  # escape (or delivery) only: default pick
        u = best[0].channel.meta[2]
        pick = best[self._rr[u] % len(best)]
        self._rr[u] += 1
        return pick

    def _credits(self, node: int) -> int:
        """Free outgoing fabric lanes at ``node`` (all single-lane)."""
        count = 0
        for ch in self._out[node]:
            if not ch.faulty and ch.lanes[0].owner is None:
                count += 1
        return count

    def node_output_channels(self, node: int) -> list[PhysChannel]:
        """All channels ``node``'s router drives (fabric + delivery).

        What a dead router silences -- the direct-topology switch
        model of :func:`repro.faults.plan.switch_output_channels`.
        """
        return list(self._out[node]) + [self.dlv[node]]

    # -- verifier interface -----------------------------------------------

    def is_escape(self, channel: PhysChannel) -> bool:
        """True for the DOR-restricted escape lanes."""
        meta = channel.meta
        return meta is not None and len(meta) == 6 and meta[4] == "esc"
