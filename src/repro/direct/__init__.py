"""Direct (node-to-node) topologies: 3D mesh / torus wormhole fabrics.

The paper evaluates switch-based *indirect* networks only; this package
generalizes the simulator to direct topologies (ROADMAP item 3): a
k-ary n-dimensional mesh or torus (:mod:`repro.direct.topo`) with two
routing functions (:mod:`repro.direct.network`):

* deterministic dimension-order routing (DOR), the deadlock-free
  baseline, and
* a credit-aware adaptive minimal router with an escape-channel
  fallback (Duato-style): adaptive lanes may form cyclic dependencies,
  but every blocked header can always fall back to a DOR-restricted
  escape lane whose sub-CDG is acyclic -- certified, not assumed, by
  :func:`repro.verify.cdg.check_escape_acyclic`.
"""

from repro.direct.topo import DirectTopology, dim_name
from repro.direct.network import ROUTERS, DirectNetwork

__all__ = ["DirectTopology", "DirectNetwork", "ROUTERS", "dim_name"]
