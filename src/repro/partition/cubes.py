"""k-ary and binary cube clusters (Definitions 5 and 6).

A *k-ary m-cube* in an ``N = k**n`` node system is the set of ``k**m``
nodes sharing the same digits in ``n - m`` fixed positions.  A *base*
cube fixes the most significant positions.  When ``k = 2**j`` the
notion relaxes to *binary* cubes: any subset of the ``n * j`` address
bits may be fixed (Theorem 2 holds at bit granularity).

:class:`Cube` therefore works on the binary expansion of node
addresses.  Patterns are written most-significant-first, matching the
paper's notation: ``Cube.from_kary("21**", k=4)`` is the base four-ary
two-cube (2100)..(2133) of the Section 4 example, and
``Cube.from_bits("0XXXXX")`` is the 32-node half of a 64-node system.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence


def _log2(k: int) -> int:
    j = k.bit_length() - 1
    if k != 1 << j:
        raise ValueError(f"k={k} is not a power of two; binary cubes need k = 2**j")
    return j


class Cube:
    """A (binary) cube cluster of node addresses.

    Internally a cube is a pair of bit masks over the ``nbits``-wide
    binary address: ``fixed_mask`` selects the fixed bit positions and
    ``fixed_bits`` their required values.
    """

    def __init__(self, nbits: int, fixed_mask: int, fixed_bits: int) -> None:
        if nbits <= 0:
            raise ValueError("nbits must be positive")
        full = (1 << nbits) - 1
        if fixed_mask & ~full or fixed_bits & ~full:
            raise ValueError("mask/bits exceed the address width")
        if fixed_bits & ~fixed_mask:
            raise ValueError("fixed_bits sets a bit outside fixed_mask")
        self.nbits = nbits
        self.fixed_mask = fixed_mask
        self.fixed_bits = fixed_bits

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_bits(cls, pattern: str) -> "Cube":
        """Parse a most-significant-first bit pattern of 0, 1, X/*.

        ``Cube.from_bits("1X0")`` fixes bit 2 = 1 and bit 0 = 0.
        """
        pattern = pattern.strip().upper().replace("*", "X")
        nbits = len(pattern)
        mask = bits = 0
        for pos, ch in enumerate(pattern):
            bit = nbits - 1 - pos
            if ch == "X":
                continue
            if ch not in "01":
                raise ValueError(f"invalid pattern character {ch!r}")
            mask |= 1 << bit
            if ch == "1":
                bits |= 1 << bit
        return cls(nbits, mask, bits)

    @classmethod
    def from_kary(cls, pattern: str, k: int) -> "Cube":
        """Parse a most-significant-first k-ary digit pattern.

        Digits are single characters interpreted in radix k (so k <= 16
        with digits 0-9, A-F); X or * marks a free digit.  Each fixed
        digit fixes ``log2(k)`` address bits (Definition 5).
        """
        j = _log2(k)
        pattern = pattern.strip().upper().replace("*", "X")
        n = len(pattern)
        mask = bits = 0
        for pos, ch in enumerate(pattern):
            digit_index = n - 1 - pos
            if ch == "X":
                continue
            value = int(ch, 16)
            if value >= k:
                raise ValueError(f"digit {ch!r} out of range for radix {k}")
            digit_mask = ((1 << j) - 1) << (digit_index * j)
            mask |= digit_mask
            bits |= value << (digit_index * j)
        return cls(n * j, mask, bits)

    @classmethod
    def whole_system(cls, nbits: int) -> "Cube":
        """The cube containing every node (no fixed bits)."""
        return cls(nbits, 0, 0)

    # -- Definition 5 / 6 properties -----------------------------------------

    @property
    def free_bits(self) -> int:
        """Number of free (unfixed) bit positions: the binary 'm'."""
        return self.nbits - bin(self.fixed_mask).count("1")

    @property
    def size(self) -> int:
        """Number of member nodes: ``2**free_bits``."""
        return 1 << self.free_bits

    def is_base(self) -> bool:
        """Definition 6: the fixed bits occupy the most significant positions."""
        if self.fixed_mask == 0:
            return True
        m = self.free_bits
        expected = ((1 << self.nbits) - 1) & ~((1 << m) - 1)
        return self.fixed_mask == expected

    def is_kary(self, k: int) -> bool:
        """True if the fixed bits align to whole radix-k digits."""
        j = _log2(k)
        if self.nbits % j:
            return False
        for digit in range(self.nbits // j):
            digit_mask = ((1 << j) - 1) << (digit * j)
            part = self.fixed_mask & digit_mask
            if part not in (0, digit_mask):
                return False
        return True

    # -- membership ------------------------------------------------------------

    def __contains__(self, address: int) -> bool:
        if not 0 <= address < (1 << self.nbits):
            return False
        return (address & self.fixed_mask) == self.fixed_bits

    def members(self) -> Iterator[int]:
        """All member addresses, ascending."""
        free_positions = [
            b for b in range(self.nbits) if not self.fixed_mask & (1 << b)
        ]
        for combo in range(1 << len(free_positions)):
            addr = self.fixed_bits
            for i, b in enumerate(free_positions):
                if combo & (1 << i):
                    addr |= 1 << b
            yield addr

    def member_list(self) -> list[int]:
        """Member addresses as a sorted list."""
        return sorted(self.members())

    # -- relations ---------------------------------------------------------------

    def is_disjoint_from(self, other: "Cube") -> bool:
        """No common member: the fixed bits conflict somewhere."""
        if self.nbits != other.nbits:
            raise ValueError("cubes over different address widths")
        common = self.fixed_mask & other.fixed_mask
        return (self.fixed_bits & common) != (other.fixed_bits & common)

    def is_subcube_of(self, other: "Cube") -> bool:
        """Every member of self is a member of other."""
        if self.nbits != other.nbits:
            raise ValueError("cubes over different address widths")
        if other.fixed_mask & ~self.fixed_mask:
            return False
        return (self.fixed_bits & other.fixed_mask) == other.fixed_bits

    @staticmethod
    def partitions(cubes: Sequence["Cube"], nbits: Optional[int] = None) -> bool:
        """True iff the cubes are pairwise disjoint and cover all nodes."""
        if not cubes:
            return False
        nbits = nbits if nbits is not None else cubes[0].nbits
        if any(c.nbits != nbits for c in cubes):
            return False
        for i, a in enumerate(cubes):
            for b in cubes[i + 1 :]:
                if not a.is_disjoint_from(b):
                    return False
        return sum(c.size for c in cubes) == 1 << nbits

    # -- misc ---------------------------------------------------------------------

    def pattern(self, k: int = 2) -> str:
        """Render as a most-significant-first pattern in radix ``k``."""
        j = _log2(k)
        if self.nbits % j:
            raise ValueError(f"width {self.nbits} not divisible by log2({k})")
        out = []
        for digit in range(self.nbits // j - 1, -1, -1):
            digit_mask = ((1 << j) - 1) << (digit * j)
            part = self.fixed_mask & digit_mask
            if part == digit_mask:
                value = (self.fixed_bits & digit_mask) >> (digit * j)
                out.append("0123456789ABCDEF"[value])
            elif part == 0:
                out.append("X")
            else:
                raise ValueError(
                    "cube does not align to whole digits; render with k=2"
                )
        return "".join(out)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Cube)
            and (self.nbits, self.fixed_mask, self.fixed_bits)
            == (other.nbits, other.fixed_mask, other.fixed_bits)
        )

    def __hash__(self) -> int:
        return hash((self.nbits, self.fixed_mask, self.fixed_bits))

    def __repr__(self) -> str:
        return f"<Cube {self.pattern(2)} ({self.size} nodes)>"
