"""Channel-usage analysis of cluster partitions (Lemma 1, Theorems 2-4).

For a cluster ``C`` and a MIN, the *channel usage* at stage boundary
``b`` is the set of channels that intra-cluster traffic (every ordered
pair of distinct members) can touch.  The paper's two partition-quality
predicates are then:

* **channel-balanced** (Lemma 1): ``|usage at b| == |C|`` at every
  boundary -- the cluster owns exactly its share of the bandwidth;
* **contention-free** (Lemma 1 / Theorem 2): usages of different
  clusters are disjoint at every boundary.

For unidirectional MINs channels are the ``(boundary, position)`` pairs
of :meth:`MINSpec.channels_of_path`.  For the BMIN (Theorem 4), usage is
computed over *all* shortest turnaround paths, since the adaptive
forward phase may use any of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.partition.cubes import Cube
from repro.topology.bmin import BidirectionalMIN
from repro.topology.spec import MINSpec


def _check_members(N: int, cluster: Cube) -> list[int]:
    if (1 << cluster.nbits) != N:
        raise ValueError(
            f"cluster {cluster!r} is over a {1 << cluster.nbits}-node address "
            f"space, not this network's {N}"
        )
    return cluster.member_list()


def cluster_channel_usage(
    spec: MINSpec, cluster: Cube
) -> dict[int, set[tuple[int, int]]]:
    """Channels per boundary touched by intra-cluster traffic."""
    members = _check_members(spec.N, cluster)
    usage: dict[int, set[tuple[int, int]]] = {b: set() for b in range(spec.n + 1)}
    for s in members:
        for d in members:
            if s == d:
                continue
            for boundary, pos in spec.channels_of_path(s, d):
                usage[boundary].add((boundary, pos))
    return usage


def is_channel_balanced(spec: MINSpec, cluster: Cube) -> bool:
    """Lemma 1's quota: exactly ``|cluster|`` channels at every boundary.

    Boundaries 0 and n (injection/delivery) trivially hold; the
    interesting ones are the ``n - 1`` inter-stage boundaries.
    """
    if cluster.size < 2:
        raise ValueError("a 1-node cluster generates no traffic to measure")
    usage = cluster_channel_usage(spec, cluster)
    return all(len(usage[b]) == cluster.size for b in range(spec.n + 1))


def clusters_are_contention_free(
    spec: MINSpec, clusters: Sequence[Cube]
) -> bool:
    """No two clusters' intra-cluster traffic shares any channel."""
    usages = [cluster_channel_usage(spec, c) for c in clusters]
    for b in range(spec.n + 1):
        seen: set[tuple[int, int]] = set()
        for usage in usages:
            if seen & usage[b]:
                return False
            seen |= usage[b]
    return True


def bmin_cluster_line_usage(
    bmin: BidirectionalMIN, cluster: Cube
) -> dict[int, set[int]]:
    """Lines per boundary that intra-cluster BMIN traffic can touch.

    The union is over all shortest turnaround paths (the adaptive
    forward phase may pick any); a line counts if either its forward or
    its backward channel is used.
    """
    members = _check_members(bmin.N, cluster)
    usage: dict[int, set[int]] = {b: set() for b in range(bmin.n)}
    for s in members:
        for d in members:
            if s == d:
                continue
            for path in bmin.enumerate_shortest_paths(s, d):
                for b, line in enumerate(path.up):
                    usage[b].add(line)
                for b, line in enumerate(path.down):
                    usage[b].add(line)
    return usage


def bmin_is_channel_balanced(bmin: BidirectionalMIN, cluster: Cube) -> bool:
    """Theorem 4's quota: a base cube of size c uses exactly c lines at
    every boundary its traffic crosses (and none above)."""
    if cluster.size < 2:
        raise ValueError("a 1-node cluster generates no traffic to measure")
    usage = bmin_cluster_line_usage(bmin, cluster)
    members = cluster.member_list()
    top = max(
        bmin.turn_stage(s, d) for s in members for d in members if s != d
    )
    for b in range(bmin.n):
        expected = cluster.size if b <= top else 0
        if len(usage[b]) != expected:
            return False
    return True


def bmin_clusters_are_contention_free(
    bmin: BidirectionalMIN, clusters: Sequence[Cube]
) -> bool:
    """No two clusters' BMIN traffic can touch a common line."""
    usages = [bmin_cluster_line_usage(bmin, c) for c in clusters]
    for b in range(bmin.n):
        seen: set[int] = set()
        for usage in usages:
            if seen & usage[b]:
                return False
            seen |= usage[b]
    return True


@dataclass(frozen=True)
class PartitionReport:
    """Summary of a partition's quality on one network."""

    network: str
    cluster_patterns: tuple[str, ...]
    contention_free: bool
    channel_balanced: tuple[bool, ...]
    channels_per_boundary: tuple[tuple[int, ...], ...]
    """``channels_per_boundary[c][b]``: channels cluster ``c`` uses at ``b``."""

    def __str__(self) -> str:
        lines = [
            f"partition of {self.network}: "
            f"{'contention-free' if self.contention_free else 'CONTENDING'}"
        ]
        for pat, balanced, counts in zip(
            self.cluster_patterns, self.channel_balanced, self.channels_per_boundary
        ):
            tag = "balanced" if balanced else "unbalanced"
            lines.append(f"  {pat}: channels/boundary {list(counts)} ({tag})")
        return "\n".join(lines)


def check_partition(
    spec: MINSpec, clusters: Sequence[Cube]
) -> PartitionReport:
    """Full report for a unidirectional MIN partition (Figs. 14 and 15)."""
    usages = [cluster_channel_usage(spec, c) for c in clusters]
    balanced = tuple(
        all(len(u[b]) == c.size for b in range(spec.n + 1))
        for c, u in zip(clusters, usages)
    )
    counts = tuple(
        tuple(len(u[b]) for b in range(spec.n + 1)) for u in usages
    )
    def render(c: Cube) -> str:
        try:
            return c.pattern(spec.k)
        except ValueError:  # binary cube not aligned to k-ary digits
            return c.pattern(2)

    return PartitionReport(
        network=f"{spec.name} MIN (k={spec.k}, n={spec.n})",
        cluster_patterns=tuple(render(c) for c in clusters),
        contention_free=clusters_are_contention_free(spec, clusters),
        channel_balanced=balanced,
        channels_per_boundary=counts,
    )
