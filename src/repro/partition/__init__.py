"""Network partitionability and traffic localization (Section 4).

When a scalable parallel computer runs several jobs, each job gets an
exclusive *processor cluster*; ideally the network partitions so that

* clusters never contend for a channel (**contention-free**), and
* a cluster of ``c`` nodes owns exactly ``c`` channels between every
  pair of adjacent stages (**channel-balanced**).

This package makes the paper's Section 4 executable:

* :mod:`repro.partition.cubes` -- k-ary m-cubes and base cubes
  (Definitions 5 and 6), generalized to *binary* cubes for
  ``k = 2**j`` (Theorem 2's relaxation);
* :mod:`repro.partition.analysis` -- per-stage channel usage of a
  cluster under intra-cluster traffic, the contention-free and
  channel-balanced predicates, and the named theorem checkers
  (Lemma 1, Theorems 2, 3 and 4).
"""

from repro.partition.cubes import Cube
from repro.partition.analysis import (
    PartitionReport,
    bmin_cluster_line_usage,
    check_partition,
    cluster_channel_usage,
    clusters_are_contention_free,
    is_channel_balanced,
)

__all__ = [
    "Cube",
    "PartitionReport",
    "bmin_cluster_line_usage",
    "check_partition",
    "cluster_channel_usage",
    "clusters_are_contention_free",
    "is_channel_balanced",
]
