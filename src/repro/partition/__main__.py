"""CLI: check a clustering against a network's partitionability.

    python -m repro.partition --topology cube -k 4 -n 3 0XX 1XX 2XX 3XX
    python -m repro.partition --topology butterfly -k 2 -n 3 XX0 XX1
    python -m repro.partition --bmin -k 2 -n 3 0XX 10X 11X

Patterns are most-significant-first; digits fix a radix-k digit, X (or
*) frees one.  Pure-binary patterns (over n*log2(k) bits) are accepted
too, e.g. 0XXXXX for half of a 64-node machine.
"""

from __future__ import annotations

import argparse
import sys

from repro.partition.analysis import (
    bmin_cluster_line_usage,
    bmin_clusters_are_contention_free,
    bmin_is_channel_balanced,
    check_partition,
)
from repro.partition.cubes import Cube
from repro.topology.bmin import BidirectionalMIN
from repro.topology.mins import TOPOLOGY_BUILDERS, build_min


def _parse_cube(pattern: str, k: int, n: int) -> Cube:
    import math

    nbits = n * int(math.log2(k))
    if len(pattern) == n:
        return Cube.from_kary(pattern, k)
    if len(pattern) == nbits:
        return Cube.from_bits(pattern)
    raise ValueError(
        f"pattern {pattern!r} must have {n} radix-{k} digits or {nbits} bits"
    )


def main(argv: list[str] | None = None) -> int:
    """Entry point; exit code 0 iff the partition is clean."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.partition",
        description="Contention-free / channel-balanced partition checks "
        "(the paper's Section 4).",
    )
    parser.add_argument(
        "--topology",
        choices=sorted(TOPOLOGY_BUILDERS),
        default="cube",
        help="unidirectional MIN topology (default: cube)",
    )
    parser.add_argument(
        "--bmin",
        action="store_true",
        help="check against the bidirectional butterfly MIN instead",
    )
    parser.add_argument("-k", type=int, default=4, help="switch radix")
    parser.add_argument("-n", type=int, default=3, help="stages")
    parser.add_argument("patterns", nargs="+", help="cluster patterns (e.g. 0XX)")
    args = parser.parse_args(argv)

    try:
        clusters = [_parse_cube(p, args.k, args.n) for p in args.patterns]
    except ValueError as exc:
        parser.error(str(exc))

    if args.bmin:
        bmin = BidirectionalMIN(args.k, args.n)
        cf = bmin_clusters_are_contention_free(bmin, clusters)
        print(
            f"butterfly BMIN (k={args.k}, n={args.n}): "
            f"{'contention-free' if cf else 'CONTENDING'}"
        )
        ok = cf
        for cube, pattern in zip(clusters, args.patterns):
            balanced = bmin_is_channel_balanced(bmin, cube)
            usage = bmin_cluster_line_usage(bmin, cube)
            counts = [len(usage[b]) for b in range(bmin.n)]
            tag = "balanced" if balanced else "unbalanced"
            print(f"  {pattern}: lines/boundary {counts} ({tag})")
            ok = ok and balanced
        return 0 if ok else 1

    spec = build_min(args.topology, args.k, args.n)
    report = check_partition(spec, clusters)
    print(report)
    return 0 if report.contention_free and all(report.channel_balanced) else 1


if __name__ == "__main__":
    sys.exit(main())
