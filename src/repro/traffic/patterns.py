"""Destination-selection patterns (Section 5.1).

A pattern answers one question: *given that node ``src`` generates a
message now, where does it go?*  Patterns operate within a member set
(a cluster); the uniform and hot-spot patterns never select the source
itself ("sent to any of the *other* nodes").
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.sim.rng import RandomStream
from repro.topology.permutations import ButterflyPermutation, PerfectShuffle, Permutation


class TrafficPattern:
    """Base class: pick a destination for ``src`` using ``rng``."""

    def pick(self, src: int, rng: RandomStream) -> Optional[int]:
        """Destination node, or None if ``src`` generates no traffic."""
        raise NotImplementedError

    def generates_traffic(self, src: int) -> bool:
        """False for sources this pattern silences (e.g. fixed points)."""
        return True


class UniformPattern(TrafficPattern):
    """Uniform over the other members of the source's cluster."""

    def __init__(self, members: Sequence[int]) -> None:
        if len(members) < 2:
            raise ValueError("uniform traffic needs at least two members")
        self.members = list(members)
        self._index = {m: i for i, m in enumerate(self.members)}

    def pick(self, src: int, rng: RandomStream) -> int:
        """Uniform choice among the cluster's other members."""
        idx = self._index.get(src)
        if idx is None:
            raise ValueError(f"{src} is not a member of this cluster")
        # Uniform over members minus self: draw from n-1 slots, skip self.
        j = rng.uniform_int(0, len(self.members) - 2)
        if j >= idx:
            j += 1
        return self.members[j]


class HotSpotPattern(TrafficPattern):
    """The x% hot-spot distribution of Pfister & Norton (Section 5.1).

    With ``y = N * x`` (N = cluster size, x the hot fraction, e.g. 0.05
    for "5% more traffic"), the hot node is chosen with probability
    ``(1 + y) / (N + y)`` and every other node with ``1 / (N + y)``.
    The source never picks itself; its probability mass is re-drawn.
    """

    def __init__(
        self,
        members: Sequence[int],
        hot_fraction: float,
        hot_node: Optional[int] = None,
    ) -> None:
        if len(members) < 2:
            raise ValueError("hot-spot traffic needs at least two members")
        if hot_fraction < 0:
            raise ValueError("hot_fraction must be >= 0")
        self.members = list(members)
        # "the first node in each cluster" is the default hot node.
        self.hot_node = self.members[0] if hot_node is None else hot_node
        if self.hot_node not in self.members:
            raise ValueError("hot node must belong to the cluster")
        self.hot_fraction = hot_fraction
        n = len(self.members)
        self.y = n * hot_fraction
        self.p_hot = (1 + self.y) / (n + self.y)

    def pick(self, src: int, rng: RandomStream) -> int:
        """Hot node with probability p_hot, else uniform (never self)."""
        if src not in self.members:
            raise ValueError(f"{src} is not a member of this cluster")
        while True:
            if rng.random() < self.p_hot:
                dest = self.hot_node
            else:
                others = len(self.members) - 1
                j = rng.uniform_int(0, others - 1)
                # skip the hot node's slot
                hot_idx = self.members.index(self.hot_node)
                if j >= hot_idx:
                    j += 1
                dest = self.members[j]
            if dest != src:
                return dest


class PermutationPattern(TrafficPattern):
    """Fixed destination per source: ``dest = perm(src)``.

    Sources mapped to themselves generate no traffic (the paper's
    permutation workloads simply have no message for those pairs).
    """

    def __init__(self, permutation: Permutation) -> None:
        self.permutation = permutation

    def pick(self, src: int, rng: RandomStream) -> Optional[int]:
        """The permutation's fixed destination (None at fixed points)."""
        dest = self.permutation(src)
        return None if dest == src else dest

    def generates_traffic(self, src: int) -> bool:
        """False at the permutation's fixed points."""
        return self.permutation(src) != src


class ShufflePattern(PermutationPattern):
    """Perfect k-shuffle permutation traffic (Fig. 20a)."""

    def __init__(self, k: int, n: int) -> None:
        super().__init__(PerfectShuffle(k, n))


class ButterflyPermutationPattern(PermutationPattern):
    """i-th butterfly permutation traffic (Fig. 20b uses i = 2)."""

    def __init__(self, k: int, n: int, i: int) -> None:
        super().__init__(ButterflyPermutation(k, n, i))
