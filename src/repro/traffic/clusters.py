"""Node clusterings and per-cluster traffic ratios (Sections 5.1-5.2).

The simulation experiments use three clusterings of the 64-node system:

* **global** -- one 64-node cluster;
* **cluster-16** -- four 16-node clusters.  On cube networks the
  channel-balanced choice is 0XX, 1XX, 2XX, 3XX; on butterfly networks
  the same patterns give the *channel-reduced* clustering while
  XX0, XX1, XX2, XX3 give the *channel-shared* clustering;
* **cluster-32** -- two 32-node binary-cube halves (top address bit).

A :class:`ClusterSpec` bundles the clusters with their relative traffic
ratio ``a:b:c:d`` (Fig. 17); traffic stays inside each cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.partition.cubes import Cube


@dataclass(frozen=True)
class ClusterSpec:
    """A clustering plus per-cluster relative traffic rates."""

    name: str
    cubes: tuple[Cube, ...]
    ratios: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.cubes) != len(self.ratios):
            raise ValueError("need one ratio per cluster")
        if not self.cubes:
            raise ValueError("need at least one cluster")
        if any(r < 0 for r in self.ratios):
            raise ValueError("ratios must be non-negative")
        if max(self.ratios) <= 0:
            raise ValueError("at least one cluster must generate traffic")
        if not Cube.partitions(list(self.cubes)):
            raise ValueError("clusters must partition the node set")

    @property
    def nbits(self) -> int:
        """Binary address width of the node space."""
        return self.cubes[0].nbits

    @property
    def N(self) -> int:
        """Number of nodes covered by the clustering."""
        return 1 << self.nbits

    def member_lists(self) -> list[list[int]]:
        """Sorted member addresses, one list per cluster."""
        return [c.member_list() for c in self.cubes]

    def node_rate_factors(self) -> dict[int, float]:
        """Per-node load multiplier in [0, 1].

        Normalized so the busiest cluster's nodes run at factor 1.0 --
        sweeping offered load then drives the busiest cluster from idle
        to its injection limit, with the others scaled by the ratio.
        """
        top = max(self.ratios)
        factors: dict[int, float] = {}
        for cube, ratio in zip(self.cubes, self.ratios):
            f = ratio / top
            for node in cube.members():
                factors[node] = f
        return factors

    def cluster_of(self, node: int) -> int:
        """Index of the cluster containing ``node``."""
        for i, cube in enumerate(self.cubes):
            if node in cube:
                return i
        raise ValueError(f"node {node} not in any cluster")

    def with_ratios(self, ratios: Sequence[float]) -> "ClusterSpec":
        """Copy with different relative traffic rates (Fig. 17)."""
        label = ":".join(f"{r:g}" for r in ratios)
        return ClusterSpec(
            f"{self.name} [{label}]", self.cubes, tuple(ratios)
        )

    def __str__(self) -> str:
        return self.name


def global_cluster(nbits: int = 6) -> ClusterSpec:
    """One cluster spanning the whole machine (default: 64 nodes)."""
    return ClusterSpec(
        "global", (Cube.whole_system(nbits),), (1.0,)
    )


def cluster_16(
    style: str = "cube", ratios: Optional[Sequence[float]] = None
) -> ClusterSpec:
    """Four 16-node clusters of the 64-node, k=4 system.

    ``style``:

    * ``"cube"`` -- 0XX..3XX: channel-balanced on the cube MIN
      (also the *channel-reduced* clustering on the butterfly MIN);
    * ``"shared"`` -- XX0..XX3: the butterfly *channel-shared*
      clustering.
    """
    if style == "cube":
        patterns = [f"{i}XX" for i in range(4)]
        name = "cluster-16 (0XX..3XX)"
    elif style == "shared":
        patterns = [f"XX{i}" for i in range(4)]
        name = "cluster-16 (XX0..XX3)"
    else:
        raise ValueError(f"unknown style {style!r}; use 'cube' or 'shared'")
    cubes = tuple(Cube.from_kary(p, 4) for p in patterns)
    r = tuple(ratios) if ratios is not None else (1.0,) * 4
    return ClusterSpec(name, cubes, r)


def cluster_32(ratios: Optional[Sequence[float]] = None) -> ClusterSpec:
    """Two 32-node halves by top address bit (binary cubes, Theorem 2)."""
    cubes = (Cube.from_bits("0XXXXX"), Cube.from_bits("1XXXXX"))
    r = tuple(ratios) if ratios is not None else (1.0, 1.0)
    return ClusterSpec("cluster-32", cubes, r)
