"""Bursty arrival processes: Pareto on-off and 2-state MMPP.

The paper's sources are Poisson (negative-exponential inter-arrival
times).  Real parallel workloads are burstier; self-similar traffic is
classically modelled by heavy-tailed on-off sources and Markov-
modulated Poisson processes.  This module adds both as drop-in
replacements for the exponential draw in
:class:`repro.traffic.workload.Workload` under one strict contract:

**exactly one RNG draw per arrival decision**, the same count as the
exponential source.  Each ``next_iat`` call consumes a single
``stream.random()`` and derives everything -- the state/branch choice
*and* the conditional gap sample -- from that one uniform by branch-
and-rescale (if ``u < p`` the branch is taken and ``u/p`` is again
uniform on [0, 1)).  Swapping arrival kinds therefore never drifts the
draw count, so the destination-pattern and size draws that follow stay
aligned and every engine tier remains bit-identical.

Both processes are *mean-calibrated*: for any target mean inter-arrival
time ``m``, ``E[next_iat(m, rng)] == m`` exactly (unit-tested), so an
offered load sweep means the same thing under every arrival kind.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sim.rng import RandomStream

ARRIVAL_KINDS = ("poisson", "pareto", "mmpp")

#: Largest float below 1.0: rescaled uniforms are clamped here so a
#: draw landing within one ulp of a branch boundary cannot round to
#: v == 1.0 and produce an infinite gap (log1p(-1) / Pareto pole).
_V_MAX = math.nextafter(1.0, 0.0)


@dataclass(frozen=True)
class ArrivalSpec:
    """Declarative arrival-process choice (hash- and CLI-friendly).

    ``kind``:

    * ``"poisson"`` -- the paper's negative-exponential source (the
      default; :class:`~repro.traffic.workload.Workload` keeps its
      legacy single ``stream.exponential`` call, bit-compatible with
      every pre-existing run);
    * ``"pareto"`` -- on-off mixture: with probability ``1 - p`` a
      short exponential gap with mean ``on_gap * m`` (the on-phase
      back-to-back spacing), with probability ``p`` a heavy-tailed
      Pareto(``alpha``) off-gap whose scale is solved so the overall
      mean is exactly ``m``;
    * ``"mmpp"`` -- 2-state Markov-modulated Poisson process: a fast
      state with mean gap ``on_gap * m`` and a slow state with mean
      gap ``(2 - on_gap) * m``, switching state with probability ``p``
      at each arrival (symmetric chain, stationary mean exactly ``m``).

    ``alpha`` (pareto only) must exceed 1 so the mean exists; values
    at or below 2 give infinite variance -- the self-similar regime.
    """

    kind: str = "poisson"
    alpha: float = 2.5     # pareto tail exponent
    on_gap: float = 0.25   # on-phase / fast-state mean gap, fraction of m
    p: float = 0.2         # off/burst probability (pareto) | switch prob

    def __post_init__(self) -> None:
        if self.kind not in ARRIVAL_KINDS:
            raise ValueError(f"unknown arrival kind {self.kind!r}")
        if not 0.0 < self.p < 1.0:
            raise ValueError("p must be in (0, 1)")
        if self.on_gap <= 0.0:
            raise ValueError("on_gap must be positive")
        if self.kind == "pareto":
            if self.alpha <= 1.0:
                raise ValueError("pareto needs alpha > 1 (finite mean)")
            if 1.0 - (1.0 - self.p) * self.on_gap <= 0.0:
                raise ValueError(
                    "pareto needs (1 - p) * on_gap < 1 so the "
                    "off-gap scale stays positive"
                )
        if self.kind == "mmpp" and self.on_gap >= 1.0:
            raise ValueError("mmpp needs on_gap < 1 (fast state is fast)")

    @property
    def label(self) -> str:
        if self.kind == "poisson":
            return "poisson"
        if self.kind == "pareto":
            return f"pareto(a={self.alpha:g},on={self.on_gap:g},p={self.p:g})"
        return f"mmpp(on={self.on_gap:g},p={self.p:g})"

    def instantiate(self) -> "ArrivalProcess | None":
        """Fresh per-source process state; None keeps the legacy
        exponential path (bit-compatible, not merely equivalent)."""
        if self.kind == "poisson":
            return None
        if self.kind == "pareto":
            return ParetoOnOffArrivals(self.alpha, self.on_gap, self.p)
        return MMPPArrivals(self.on_gap, self.p)


class ArrivalProcess:
    """One source's arrival state; ``next_iat`` draws exactly once."""

    def next_iat(self, mean: float, stream: RandomStream) -> float:
        raise NotImplementedError


class ParetoOnOffArrivals(ArrivalProcess):
    """On-off source with exponential on-gaps and Pareto off-gaps."""

    __slots__ = ("alpha", "on_gap", "p")

    def __init__(self, alpha: float, on_gap: float, p: float) -> None:
        self.alpha = alpha
        self.on_gap = on_gap
        self.p = p

    def next_iat(self, mean: float, stream: RandomStream) -> float:
        u = stream.random()
        p_on = 1.0 - self.p
        if u < p_on:
            # On-phase: exponential with mean on_gap * m.  u / p_on is
            # uniform on [0, 1), so -log1p(-(u / p_on)) is Exp(1).
            return -self.on_gap * mean * math.log1p(-min(u / p_on, _V_MAX))
        # Off-phase: Pareto(alpha) by inverse transform on the rescaled
        # tail v = (u - p_on) / p, with the scale x_m solved so the
        # mixture mean is exactly `mean`:
        #   (1-p) * on_gap * m  +  p * x_m * alpha / (alpha-1)  ==  m
        v = min((u - p_on) / self.p, _V_MAX)
        x_m = (
            mean
            * (1.0 - p_on * self.on_gap)
            * (self.alpha - 1.0)
            / (self.p * self.alpha)
        )
        return x_m * (1.0 - v) ** (-1.0 / self.alpha)


class MMPPArrivals(ArrivalProcess):
    """2-state Markov-modulated Poisson source (fast / slow)."""

    __slots__ = ("on_gap", "p", "state")

    def __init__(self, on_gap: float, p: float) -> None:
        self.on_gap = on_gap
        self.p = p
        self.state = 0  # 0 = fast (bursting), 1 = slow (idle-ish)

    def next_iat(self, mean: float, stream: RandomStream) -> float:
        u = stream.random()
        if u < self.p:
            # Switch state, then reuse the remaining uniform mass:
            # u / p is uniform on [0, 1) conditioned on switching.
            self.state = 1 - self.state
            v = min(u / self.p, _V_MAX)
        else:
            v = min((u - self.p) / (1.0 - self.p), _V_MAX)
        # Symmetric switch probability -> stationary (1/2, 1/2), so
        # gap means (on_gap * m, (2 - on_gap) * m) average exactly m.
        scale = self.on_gap if self.state == 0 else 2.0 - self.on_gap
        return -scale * mean * math.log1p(-v)
