"""Arrival processes and message-size models (Section 5.1).

Each node generates messages at negative-exponentially distributed
intervals and queues them FCFS at the source (the engine owns the
queues).  *Offered load* is expressed as a fraction of a node's
injection bandwidth: load 0.4 means the node offers 0.4 flits per cycle
on average, i.e. mean inter-arrival time = mean message length / 0.4.

Message sizes: the paper draws lengths uniformly from [8, 1024] flits;
fixed and bimodal models cover the short/long/bimodal study it lists as
future work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.sim.core import Environment
from repro.sim.rng import RandomStream
from repro.traffic.bursty import ArrivalSpec
from repro.traffic.clusters import ClusterSpec
from repro.traffic.patterns import TrafficPattern
from repro.wormhole.engine import WormholeEngine


@dataclass(frozen=True)
class MessageSizeModel:
    """Distribution of message lengths in flits."""

    kind: str = "uniform"  # "uniform" | "fixed" | "bimodal"
    low: int = 8
    high: int = 1024
    short_fraction: float = 0.5   # bimodal only
    split: int = 32               # bimodal only

    def __post_init__(self) -> None:
        if self.kind not in ("uniform", "fixed", "bimodal"):
            raise ValueError(f"unknown size model {self.kind!r}")
        if self.low < 1 or self.high < self.low:
            raise ValueError("need 1 <= low <= high")

    @property
    def mean(self) -> float:
        """Expected message length in flits."""
        if self.kind == "fixed":
            return float(self.low)
        if self.kind == "uniform":
            return (self.low + self.high) / 2
        # bimodal: mixture of two uniforms
        short_mean = (self.low + self.split) / 2
        long_mean = (self.split + 1 + self.high) / 2
        return (
            self.short_fraction * short_mean
            + (1 - self.short_fraction) * long_mean
        )

    def draw(self, rng: RandomStream) -> int:
        """Sample one message length."""
        if self.kind == "fixed":
            return self.low
        if self.kind == "uniform":
            return rng.uniform_int(self.low, self.high)
        return rng.bimodal_int(
            self.low, self.high, self.short_fraction, self.split
        )

    @classmethod
    def paper(cls) -> "MessageSizeModel":
        """The paper's model: uniform on [8, 1024] flits."""
        return cls("uniform", 8, 1024)

    @classmethod
    def scaled(cls) -> "MessageSizeModel":
        """Shorter messages for quick runs; same qualitative behaviour."""
        return cls("uniform", 8, 64)


class Workload:
    """Installs per-node Poisson sources into an engine's environment.

    Parameters
    ----------
    clusters:
        The clustering (members + traffic ratios); traffic stays inside
        each cluster.
    pattern_factory:
        Builds the destination pattern for one cluster's member list:
        ``pattern_factory(members) -> TrafficPattern``.  Permutation
        patterns typically ignore the member list and act globally.
    offered_load:
        Flits per cycle per node in the busiest cluster (0..~1).
    sizes:
        Message-length model.
    governor:
        Optional rate governor (anything with ``rate_of(node) -> float``,
        e.g. :class:`repro.stability.AIMDGovernor`).  When set, each
        source divides its mean inter-arrival time by the governor's
        current multiplier *before* its single exponential draw -- the
        RNG draw count per message is unchanged, so governed and
        ungoverned runs consume streams identically and the fast and
        reference engine paths stay bit-identical.
    block_retry:
        Cycles a source waits before re-offering a message refused by a
        blocking admission policy (``engine.offer`` returned None).  The
        retry wait is a fixed timeout -- no RNG -- modelling hardware
        backpressure polling.
    arrival:
        Optional :class:`repro.traffic.bursty.ArrivalSpec`.  ``None``
        (or kind ``"poisson"``) keeps the paper's single
        ``stream.exponential`` draw -- bit-compatible with every
        pre-existing run.  Bursty kinds replace that draw with exactly
        one draw per arrival (see :mod:`repro.traffic.bursty`), so the
        per-message draw count never drifts.
    transport:
        Optional end-to-end transport (anything with
        ``send(src, dst, length)``, e.g.
        :class:`repro.transport.ReliableTransport`).  When set, sources
        hand messages to the transport instead of offering raw packets;
        the transport absorbs admission pressure (its window/backoff),
        so the block-retry loop is bypassed.
    """

    def __init__(
        self,
        clusters: ClusterSpec,
        pattern_factory: Callable[[list[int]], TrafficPattern],
        offered_load: float,
        sizes: Optional[MessageSizeModel] = None,
        governor: Optional[object] = None,
        block_retry: float = 8.0,
        arrival: Optional[ArrivalSpec] = None,
        transport: Optional[object] = None,
    ) -> None:
        if offered_load <= 0:
            raise ValueError("offered_load must be positive")
        if block_retry <= 0:
            raise ValueError("block_retry must be positive")
        self.clusters = clusters
        self.pattern_factory = pattern_factory
        self.offered_load = offered_load
        self.sizes = sizes if sizes is not None else MessageSizeModel.paper()
        self.governor = governor
        self.block_retry = block_retry
        self.arrival = arrival
        self.transport = transport

    def install(
        self, env: Environment, engine: WormholeEngine, rng: RandomStream
    ) -> int:
        """Create the source processes; returns how many nodes generate."""
        if engine.network.N != self.clusters.N:
            raise ValueError(
                f"clustering is for {self.clusters.N} nodes, "
                f"network has {engine.network.N}"
            )
        factors = self.clusters.node_rate_factors()
        active = 0
        for members in self.clusters.member_lists():
            pattern = self.pattern_factory(members)
            for node in members:
                factor = factors[node]
                if factor <= 0 or not pattern.generates_traffic(node):
                    continue
                mean_iat = self.sizes.mean / (self.offered_load * factor)
                stream = rng.fork(f"src-{node}")
                env.process(
                    self._source(env, engine, node, pattern, mean_iat, stream),
                    name=f"source-{node}",
                )
                active += 1
        return active

    def _source(
        self,
        env: Environment,
        engine: WormholeEngine,
        node: int,
        pattern: TrafficPattern,
        mean_iat: float,
        stream: RandomStream,
    ):
        governor = self.governor
        transport = self.transport
        # Per-source arrival state (MMPP carries its modulation state
        # here); None keeps the legacy exponential call itself, so the
        # poisson path is bit-compatible, not merely equivalent.
        arrival = self.arrival.instantiate() if self.arrival else None
        while True:
            iat = mean_iat
            if governor is not None:
                # Scale the *mean* before the single draw: one
                # exponential per message regardless of the multiplier,
                # keeping RNG stream consumption bit-identical to an
                # ungoverned run at the same seed.
                rate = governor.rate_of(node)
                if rate > 0:
                    iat = mean_iat / rate
            if arrival is None:
                gap = stream.exponential(iat)
            else:
                gap = arrival.next_iat(iat, stream)
            yield env.timeout(gap)
            dest = pattern.pick(node, stream)
            if dest is None:  # pragma: no cover - silenced sources skipped
                continue
            length = self.sizes.draw(stream)
            if transport is not None:
                # End-to-end reliability: the transport never refuses;
                # its window/backoff absorbs admission pressure.
                transport.send(node, dest, length)
                continue
            while engine.offer(node, dest, length) is None:
                # Blocking admission refused the message: hold it and
                # re-offer after a fixed (RNG-free) backpressure wait.
                yield env.timeout(self.block_retry)
