"""Workload generation: traffic patterns, clusterings and arrival processes.

Reproduces Section 5.1's workload model:

* Poisson packet generation per node (negative-exponential inter-arrival
  times), message length uniform on [8, 1024] flits, FCFS source queues
  (:mod:`repro.traffic.workload`);
* four destination patterns -- uniform, x% hot-spot (Pfister-Norton),
  perfect k-shuffle permutation and i-th butterfly permutation
  (:mod:`repro.traffic.patterns`);
* node clusterings -- global, cluster-16, cluster-32, with the cube /
  butterfly-channel-reduced / butterfly-channel-shared variants and
  per-cluster traffic ratios like 4:1:1:1 (:mod:`repro.traffic.clusters`).
"""

from repro.traffic.bursty import (
    ArrivalSpec,
    MMPPArrivals,
    ParetoOnOffArrivals,
)
from repro.traffic.clusters import (
    ClusterSpec,
    cluster_16,
    cluster_32,
    global_cluster,
)
from repro.traffic.patterns import (
    ButterflyPermutationPattern,
    HotSpotPattern,
    PermutationPattern,
    ShufflePattern,
    TrafficPattern,
    UniformPattern,
)
from repro.traffic.trace import (
    Trace,
    TraceFormatError,
    TraceRecord,
    TraceWorkload,
    read_trace,
    synthesize_trace,
    write_trace,
)
from repro.traffic.workload import MessageSizeModel, Workload

__all__ = [
    "ArrivalSpec",
    "ButterflyPermutationPattern",
    "ClusterSpec",
    "HotSpotPattern",
    "MMPPArrivals",
    "MessageSizeModel",
    "ParetoOnOffArrivals",
    "PermutationPattern",
    "ShufflePattern",
    "Trace",
    "TraceFormatError",
    "TraceRecord",
    "TraceWorkload",
    "UniformPattern",
    "Workload",
    "cluster_16",
    "cluster_32",
    "global_cluster",
    "read_trace",
    "synthesize_trace",
    "write_trace",
]
