"""Recorded-trace workloads: a versioned binary format plus replay.

A trace is a flat sequence of timestamped ``(t, src, dst, size)``
records.  The on-disk format is deliberately boring and fully checked:

* 24-byte header: magic ``REPROTRC``, little-endian ``u16`` version
  (currently 1), ``u16`` flags (reserved, 0), ``u32`` node count,
  ``u64`` record count;
* ``count`` packed records ``<dIII`` (f64 cycle timestamp, u32 src,
  u32 dst, u32 size in flits);
* SHA-256 of header + payload as a 32-byte trailer.

Every read path validates magic, version, lengths and checksum and
raises :class:`TraceFormatError` with a message naming what is wrong
-- a truncated or bit-flipped trace is rejected up front, never a
crash (or silent garbage) mid-simulation.

:class:`TraceWorkload` replays a trace into an engine with the same
``install(env, engine, rng)`` interface as
:class:`repro.traffic.workload.Workload`.  Replay first sorts records
by ``(t, src, dst, size)``, so any permutation of the same record set
replays identically (unit- and property-tested).  Injection goes
through the optional end-to-end transport when one is set, raw
``engine.offer`` otherwise.
"""

from __future__ import annotations

import hashlib
import math
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterable, Optional, Union

from repro.sim.core import Environment
from repro.sim.rng import RandomStream
from repro.wormhole.engine import WormholeEngine

TRACE_MAGIC = b"REPROTRC"
TRACE_VERSION = 1
_HEADER = struct.Struct("<8sHHIQ")
_RECORD = struct.Struct("<dIII")
_DIGEST_SIZE = 32


class TraceFormatError(ValueError):
    """A trace file failed validation (truncated, corrupt or foreign)."""


@dataclass(frozen=True, order=True)
class TraceRecord:
    """One recorded injection: at cycle ``t``, ``src`` sends ``size``
    flits to ``dst``.  Field order doubles as the replay sort key."""

    t: float
    src: int
    dst: int
    size: int

    def __post_init__(self) -> None:
        if not math.isfinite(self.t) or self.t < 0:
            raise ValueError(f"timestamp must be finite and >= 0, got {self.t}")
        if self.src < 0 or self.dst < 0:
            raise ValueError("src and dst must be >= 0")
        if self.src == self.dst:
            raise ValueError(f"src == dst == {self.src} is not a message")
        if self.size < 1:
            raise ValueError(f"size must be >= 1 flit, got {self.size}")


@dataclass(frozen=True)
class Trace:
    """An in-memory trace: the node-count bound plus its records."""

    n_nodes: int
    records: tuple[TraceRecord, ...]

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ValueError("a trace needs at least 2 nodes")
        for r in self.records:
            if r.src >= self.n_nodes or r.dst >= self.n_nodes:
                raise ValueError(
                    f"record {r} outside the {self.n_nodes}-node trace"
                )

    def sorted(self) -> "Trace":
        """Canonical replay order: (t, src, dst, size) ascending."""
        return Trace(self.n_nodes, tuple(sorted(self.records)))


def write_trace(path: Union[str, Path], trace: Trace) -> None:
    """Serialize ``trace`` (header + records + SHA-256 trailer)."""
    header = _HEADER.pack(
        TRACE_MAGIC, TRACE_VERSION, 0, trace.n_nodes, len(trace.records)
    )
    payload = b"".join(
        _RECORD.pack(r.t, r.src, r.dst, r.size) for r in trace.records
    )
    digest = hashlib.sha256(header + payload).digest()
    with open(path, "wb") as fh:
        fh.write(header)
        fh.write(payload)
        fh.write(digest)


def read_trace(path: Union[str, Path]) -> Trace:
    """Load and fully validate a trace; raises :class:`TraceFormatError`."""
    with open(path, "rb") as fh:
        return _read_trace_stream(fh, str(path))


def _read_trace_stream(fh: IO[bytes], name: str) -> Trace:
    header = fh.read(_HEADER.size)
    if len(header) < _HEADER.size:
        raise TraceFormatError(
            f"{name}: truncated header ({len(header)} of "
            f"{_HEADER.size} bytes)"
        )
    magic, version, flags, n_nodes, count = _HEADER.unpack(header)
    if magic != TRACE_MAGIC:
        raise TraceFormatError(f"{name}: bad magic {magic!r} (not a trace)")
    if version != TRACE_VERSION:
        raise TraceFormatError(
            f"{name}: unsupported trace version {version} "
            f"(this reader handles {TRACE_VERSION})"
        )
    if flags != 0:
        raise TraceFormatError(f"{name}: unknown flag bits 0x{flags:04x}")
    # Read what is actually there, then compare against the declared
    # count: a bit-flipped (or hostile) u64 count must produce a clean
    # format error, never an attempted multi-exabyte allocation.
    body = fh.read()
    need = count * _RECORD.size
    if len(body) < need:
        raise TraceFormatError(
            f"{name}: truncated payload ({len(body)} of "
            f"{need} bytes for {count} records)"
        )
    if len(body) < need + _DIGEST_SIZE:
        raise TraceFormatError(f"{name}: missing checksum trailer")
    if len(body) > need + _DIGEST_SIZE:
        raise TraceFormatError(f"{name}: trailing bytes after checksum")
    payload = body[:need]
    digest = body[need:]
    expect = hashlib.sha256(header + payload).digest()
    if digest != expect:
        raise TraceFormatError(
            f"{name}: checksum mismatch (corrupt trace): "
            f"{digest.hex()[:16]}… != {expect.hex()[:16]}…"
        )
    try:
        records = tuple(
            TraceRecord(*_RECORD.unpack_from(payload, i * _RECORD.size))
            for i in range(count)
        )
        return Trace(n_nodes, records)
    except ValueError as exc:
        raise TraceFormatError(f"{name}: invalid record: {exc}") from exc


def synthesize_trace(
    n_nodes: int,
    count: int,
    rng: RandomStream,
    mean_iat: float = 16.0,
    arrival: Optional[object] = None,
    size_low: int = 8,
    size_high: int = 64,
) -> Trace:
    """Generate a uniform-destination trace (the ``trace_gen`` core).

    ``arrival`` is an optional instantiated
    :class:`repro.traffic.bursty.ArrivalProcess`; ``None`` uses the
    exponential draw.  One global clock drives all sources (record
    sorting puts them in replay order anyway).
    """
    if n_nodes < 2:
        raise ValueError("need at least 2 nodes")
    if count < 0:
        raise ValueError("count must be >= 0")
    records = []
    t = 0.0
    per_message = mean_iat / n_nodes  # global rate: all nodes offering
    for _ in range(count):
        if arrival is None:
            t += rng.exponential(per_message)
        else:
            t += arrival.next_iat(per_message, rng)  # type: ignore[attr-defined]
        src = rng.uniform_int(0, n_nodes - 1)
        dst = rng.uniform_int(0, n_nodes - 2)
        if dst >= src:
            dst += 1
        size = rng.uniform_int(size_low, size_high)
        records.append(TraceRecord(t, src, dst, size))
    return Trace(n_nodes, tuple(records))


class TraceWorkload:
    """Replays a trace into an engine (``Workload``-shaped interface).

    The replay process walks the canonically sorted records, sleeping
    to each timestamp and injecting -- through ``transport.send`` when
    a transport is attached, else raw ``engine.offer`` with the fixed
    block-retry wait of the synthetic sources.  Replay is finite:
    :attr:`replayed` reaches ``len(trace.records)`` and the process
    ends, so a quiesce after replay settles every outcome.
    """

    def __init__(
        self,
        trace: Trace,
        transport: Optional[object] = None,
        block_retry: float = 8.0,
    ) -> None:
        if block_retry <= 0:
            raise ValueError("block_retry must be positive")
        self.trace = trace.sorted()
        self.transport = transport
        self.block_retry = block_retry
        self.replayed = 0

    def install(
        self, env: Environment, engine: WormholeEngine, rng: RandomStream
    ) -> int:
        """Start the replay process; returns the source count (1)."""
        if engine.network.N < self.trace.n_nodes:
            raise ValueError(
                f"trace spans {self.trace.n_nodes} nodes, "
                f"network has {engine.network.N}"
            )
        env.process(self._replay(env, engine), name="trace-replay")
        return 1

    def _replay(self, env: Environment, engine: WormholeEngine):
        transport = self.transport
        for r in self.trace.records:
            if r.t > env.now:
                yield env.timeout(r.t - env.now)
            if transport is not None:
                transport.send(r.src, r.dst, r.size)
            else:
                while engine.offer(r.src, r.dst, r.size) is None:
                    yield env.timeout(self.block_retry)
            self.replayed += 1
