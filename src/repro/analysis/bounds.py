"""Exact structural throughput ceilings for the paper's workloads.

These are conservation-law bounds -- no simulation model can beat them:

* **hot-spot cap**: the hot node is served by one delivery channel
  (1 flit/cycle), so once its demand share saturates that channel the
  aggregate throughput is pinned (tree saturation then develops behind
  it; Pfister & Norton).
* **permutation cap**: if some channel is statically shared by ``c``
  source/destination pairs of a permutation, a network with ``m``
  parallel channels (or fair-shared virtual channels) on that wire
  sustains at most ``m/c`` of the pattern's full rate.
* **cluster-ratio cap**: with per-cluster rate ratios, only the active
  share of nodes can inject; aggregate throughput is bounded by the
  weighted node fraction.

The simulator is property-tested against all three.
"""

from __future__ import annotations

from typing import Sequence


def hot_spot_cap(n_nodes: int, hot_fraction: float) -> float:
    """Max aggregate throughput fraction under the paper's hot-spot model.

    With ``y = N * x``, the hot node receives share
    ``p = (1+y)/(N+y)`` of all delivered flits; its delivery channel
    carries at most 1 flit/cycle, so aggregate delivered flits/cycle
    <= 1/p, i.e. a fraction ``1 / (N * p)`` of the N-channel maximum.
    """
    if n_nodes < 2:
        raise ValueError("need at least two nodes")
    if hot_fraction < 0:
        raise ValueError("hot fraction must be non-negative")
    y = n_nodes * hot_fraction
    p_hot = (1 + y) / (n_nodes + y)
    return min(1.0, 1.0 / (n_nodes * p_hot))


def permutation_cap(
    max_contention: int, channels_per_wire: int = 1, active_fraction: float = 1.0
) -> float:
    """Max aggregate throughput fraction under a fixed permutation.

    ``max_contention`` is the static path count on the busiest channel
    (see :func:`repro.topology.equivalence.max_channel_contention`);
    ``channels_per_wire`` is the dilation (or usable VC count) of that
    wire; ``active_fraction`` the share of nodes the permutation keeps
    active (fixed points are silent).
    """
    if max_contention < 1:
        raise ValueError("contention must be at least 1 (the path itself)")
    if channels_per_wire < 1:
        raise ValueError("need at least one channel per wire")
    if not 0 < active_fraction <= 1:
        raise ValueError("active fraction must be in (0, 1]")
    return min(active_fraction, channels_per_wire / max_contention)


def cluster_ratio_cap(
    cluster_sizes: Sequence[int], ratios: Sequence[float]
) -> float:
    """Max aggregate throughput fraction under per-cluster rate ratios.

    Rates are normalized so the busiest cluster's nodes inject at full
    bandwidth (the convention of
    :meth:`repro.traffic.clusters.ClusterSpec.node_rate_factors`);
    aggregate injection is then the weighted node fraction.  Ratio
    1:0:0:0 over four 16-node clusters gives the paper's ~25% ceiling.
    """
    if len(cluster_sizes) != len(ratios) or not cluster_sizes:
        raise ValueError("need matching, non-empty sizes and ratios")
    if any(s <= 0 for s in cluster_sizes):
        raise ValueError("cluster sizes must be positive")
    if any(r < 0 for r in ratios) or max(ratios) <= 0:
        raise ValueError("ratios must be non-negative with a positive max")
    top = max(ratios)
    total = sum(cluster_sizes)
    weighted = sum(s * r / top for s, r in zip(cluster_sizes, ratios))
    return weighted / total
