"""Probabilistic throughput model for unbuffered Delta networks.

Patel's analysis (and Kruskal & Snir's refinement -- the paper's
reference [5]) models a k x k unbuffered crossbar stage under uniform
random traffic: if each input port carries a packet with probability
``p`` in a cycle, each output port emits one with probability::

    accept(p, k) = 1 - (1 - p/k) ** k

Chaining ``n`` stages gives the network's acceptance rate, an upper
bound on sustainable uniform throughput for single-channel (TMIN-like)
networks.  Wormhole switching with 1-flit buffers behaves differently
in detail (worms hold paths), but the model anchors the right order of
magnitude and the diminishing-returns shape as stages multiply.
"""

from __future__ import annotations


def stage_acceptance(p: float, k: int) -> float:
    """Probability an output port is busy given input-port load ``p``.

    Each of the k inputs requests this output with probability ``p/k``
    (uniform routing); the output is busy unless all abstain.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"port load p={p} must be within [0, 1]")
    if k < 1:
        raise ValueError("switch radix must be positive")
    return 1.0 - (1.0 - p / k) ** k


def delta_network_throughput(load: float, k: int, n: int) -> float:
    """Accepted load per output after ``n`` stages of k x k switches.

    Monotone in ``load`` and decreasing in ``n``; at ``load = 1`` this
    is the classical saturation bandwidth of the unbuffered Delta
    network (e.g. ~0.57 for k=4, n=3).
    """
    if n < 0:
        raise ValueError("stage count must be non-negative")
    p = load
    for _ in range(n):
        p = stage_acceptance(p, k)
    return p


def saturation_bandwidth(k: int, n: int) -> float:
    """Saturation throughput fraction: acceptance at full offered load."""
    return delta_network_throughput(1.0, k, n)


def asymptotic_bandwidth(k: int, n: int) -> float:
    """Kruskal & Snir's large-n approximation ``2k / ((k-1) * n)``.

    (For k = 2 this is the classical 4/n.)  Valid for large n; shows
    the 1/n decay of unbuffered banyan bandwidth -- the motivation for
    buffering and for the dilated and bidirectional designs the paper
    compares.
    """
    if k < 2:
        raise ValueError("asymptotic form needs k >= 2")
    if n < 1:
        raise ValueError("need at least one stage")
    return min(1.0, 2 * k / ((k - 1) * n))
