"""Analytic cross-checks for the simulation results.

* :mod:`repro.analysis.kruskal_snir` -- the classic Kruskal & Snir /
  Patel probabilistic throughput model for unbuffered Delta networks
  (the paper's reference [5]); an analytic anchor for the uniform-load
  saturation ordering.
* :mod:`repro.analysis.bounds` -- exact structural throughput ceilings
  implied by the paper's workloads: the hot-spot delivery cap, the
  static permutation-contention cap, and cluster-ratio caps.  The
  simulator must respect all of them (property-tested), and they explain
  the knees in Figs. 19-20.
* :mod:`repro.analysis.cost` -- a Chien-style hardware/packaging cost
  model making Section 6's complexity claims ("DMIN and BMIN have
  similar hardware and packaging complexity") computable.
"""

from repro.analysis.bounds import (
    cluster_ratio_cap,
    hot_spot_cap,
    permutation_cap,
)
from repro.analysis.cost import (
    NetworkCost,
    SwitchCost,
    cost_comparison,
    network_cost,
)
from repro.analysis.kruskal_snir import (
    delta_network_throughput,
    stage_acceptance,
)

__all__ = [
    "NetworkCost",
    "SwitchCost",
    "cluster_ratio_cap",
    "cost_comparison",
    "delta_network_throughput",
    "hot_spot_cap",
    "network_cost",
    "permutation_cap",
    "stage_acceptance",
]
