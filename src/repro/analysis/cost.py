"""Hardware cost and complexity model for the four switch designs.

Section 6 rests the paper's conclusion on a cost argument: "both DMINs
(dilation two) and BMINs have a similar hardware and packaging
complexity", and footnote 4 notes the BMIN's crossbar is slightly more
complex because an input has more legal outputs.  This module makes
those statements computable with a simple, explicit model in the style
of Chien's router cost model (the paper's reference [22]):

* **crossbar cost** grows with (inputs x legal outputs) -- the number
  of crosspoints actually implemented;
* **buffer cost** counts flit buffers (one per virtual channel per
  input, per the paper's 1-flit assumption);
* **arbitration cost** grows with the number of requesters an output
  port must arbitrate among, times the number of arbiters;
* **wiring (packaging) cost** counts unidirectional inter-switch
  channels, each ``W`` bits wide.

The absolute units are arbitrary (crosspoints / flits / requester
inputs / wires); the *ratios* between designs are the model's output.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SwitchCost:
    """Per-switch complexity of one design point."""

    design: str
    crosspoints: int
    flit_buffers: int
    arbiter_inputs: int

    @property
    def gate_proxy(self) -> float:
        """A single scalar: crosspoints + buffers + arbitration.

        Buffers are weighted by 4 (a flit buffer is several registers
        wide) -- the weights are explicit so they can be challenged.
        """
        return self.crosspoints + 4 * self.flit_buffers + self.arbiter_inputs


def unidirectional_switch_cost(
    k: int, dilation: int = 1, virtual_channels: int = 1
) -> SwitchCost:
    """TMIN (d=1, v=1), DMIN (d>1) or VMIN (v>1) switch.

    A d-dilated k x k switch is physically a (dk) x (dk) crossbar; a
    v-VC switch keeps the k x k crossbar but multiplies buffers and
    arbitration (each output port arbitrates among k inputs x v VCs).
    """
    if dilation > 1 and virtual_channels > 1:
        raise ValueError("dilated and virtual-channel designs are distinct")
    inputs = k * dilation
    outputs = k * dilation
    name = "tmin"
    if dilation > 1:
        name = f"dmin(d={dilation})"
    if virtual_channels > 1:
        name = f"vmin(v={virtual_channels})"
    return SwitchCost(
        design=name,
        crosspoints=inputs * outputs,
        flit_buffers=k * dilation * virtual_channels,
        arbiter_inputs=outputs * (k * virtual_channels),
    )


def bidirectional_switch_cost(k: int, virtual_channels: int = 1) -> SwitchCost:
    """BMIN switch: 2k inputs, 2k outputs, but the r->r quadrant of the
    crossbar is forbidden (Fig. 2), so only 3k^2 crosspoints exist:
    forward (k x k), backward (k x k) and turnaround (k x (k-1),
    rounded up to k x k here as implementations do).

    Footnote 4's point appears as arbitration cost: each left output
    arbitrates among right inputs *and* turnaround requests (2k - 1
    requesters), each right output among k left inputs.
    """
    v = virtual_channels
    return SwitchCost(
        design="bmin" if v == 1 else f"bmin(v={v})",
        crosspoints=3 * k * k,
        flit_buffers=2 * k * v,
        arbiter_inputs=(k * (2 * k - 1) + k * k) * v,
    )


@dataclass(frozen=True)
class NetworkCost:
    """Whole-network complexity: N = k**n nodes, n stages of N/k switches."""

    design: str
    switches: int
    switch: SwitchCost
    inter_switch_channels: int

    @property
    def total_gate_proxy(self) -> float:
        """Whole-network switch-hardware proxy (switches x per-switch)."""
        return self.switches * self.switch.gate_proxy

    @property
    def wiring_cost(self) -> int:
        """Unidirectional inter-switch channels (packaging complexity)."""
        return self.inter_switch_channels


def network_cost(
    kind: str,
    k: int,
    n: int,
    dilation: int = 2,
    virtual_channels: int = 2,
) -> NetworkCost:
    """Network-level cost for one of the paper's four designs."""
    N = k**n
    switches = n * (N // k)
    if kind == "tmin":
        switch = unidirectional_switch_cost(k)
        channels = (n - 1) * N + 2 * N  # inner boundaries + edge links
    elif kind == "dmin":
        switch = unidirectional_switch_cost(k, dilation=dilation)
        channels = (n - 1) * N * dilation + 2 * N
    elif kind == "vmin":
        switch = unidirectional_switch_cost(k, virtual_channels=virtual_channels)
        channels = (n - 1) * N + 2 * N  # VCs share the same wires
    elif kind == "bmin":
        switch = bidirectional_switch_cost(k)
        # Every boundary 1..n-1 carries N line *pairs*; the node side
        # carries N pairs as well.
        channels = 2 * ((n - 1) * N + N)
    else:
        raise ValueError(f"unknown design {kind!r}")
    return NetworkCost(
        design=kind,
        switches=switches,
        switch=switch,
        inter_switch_channels=channels,
    )


def cost_comparison(k: int = 4, n: int = 3) -> dict[str, NetworkCost]:
    """The paper's four designs at its evaluation geometry."""
    return {kind: network_cost(kind, k, n) for kind in ("tmin", "dmin", "vmin", "bmin")}
