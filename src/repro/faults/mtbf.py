"""Stochastic fault churn: an MTBF/MTTR fail-and-repair process.

Each selected channel independently alternates between *up* and *down*:
up-times are exponential with mean ``mtbf`` cycles, down-times
exponential with mean ``mttr`` cycles.  The steady-state unavailability
of one channel is therefore ``mttr / (mtbf + mttr)`` -- the knob the
availability experiments sweep.

The churn runs as ordinary sim processes inside the
:class:`~repro.sim.core.Environment`, so faults strike while worms are
in flight; with ``severity="hard"`` the worms on a failing wire are
aborted immediately (wire cut), with ``"soft"`` they finish streaming
(routing-table removal).

By default only *inter-stage* channels churn: injection and delivery
channels are the node's own interface -- failing them models a dead
node, not a degraded network fabric, and the paper's fault-tolerance
argument (Section 2) is about fabric path redundancy.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.sim.core import Environment
from repro.sim.rng import RandomStream
from repro.wormhole.channel import PhysChannel
from repro.wormhole.engine import WormholeEngine
from repro.wormhole.network import SimNetwork
from repro.wormhole.packet import PacketState


def fabric_channels(network: SimNetwork) -> list[PhysChannel]:
    """Inter-stage channels only (no injection, no delivery wires)."""
    out = []
    for ch in network.topo_channels:
        if ch.is_delivery:
            continue
        if ch.label.startswith("inj["):
            continue
        if ch.meta is not None and ch.meta[0] == "fwd" and ch.meta[1] == 0:
            continue  # BMIN boundary-0 forward wires are the injection
        out.append(ch)
    return out


class MTBFChurn:
    """Independent exponential fail/repair churn over a channel set.

    Parameters
    ----------
    env, network:
        The live simulation; one process per churned channel is
        spawned immediately.
    rng:
        Source of the exponential draws (forked per channel, so runs
        are reproducible regardless of event interleaving).
    mtbf:
        Mean up-time in cycles (exponential).
    mttr:
        Mean repair time in cycles (exponential).  ``None`` makes every
        failure permanent.
    channels:
        The channels to churn; default :func:`fabric_channels`.
    engine, severity:
        ``severity="hard"`` aborts the worms on a failing wire through
        the engine (required argument in that case).
    """

    def __init__(
        self,
        env: Environment,
        network: SimNetwork,
        rng: RandomStream,
        mtbf: float,
        mttr: Optional[float] = None,
        channels: Optional[Iterable[PhysChannel]] = None,
        engine: Optional[WormholeEngine] = None,
        severity: str = "soft",
    ) -> None:
        if mtbf <= 0:
            raise ValueError("mtbf must be positive")
        if mttr is not None and mttr <= 0:
            raise ValueError("mttr must be positive (or None for permanent)")
        if severity not in ("soft", "hard"):
            raise ValueError("severity must be 'soft' or 'hard'")
        if severity == "hard" and engine is None:
            raise ValueError("hard churn needs the engine to kill worms")
        self.env = env
        self.network = network
        self.mtbf = mtbf
        self.mttr = mttr
        self.engine = engine
        self.severity = severity
        self.failures = 0
        self.repairs = 0
        self.killed_worms = 0
        self.channels = list(
            channels if channels is not None else fabric_channels(network)
        )
        for ch in self.channels:
            env.process(
                self._churn(ch, rng.fork(f"mtbf/{ch.label}")),
                name=f"mtbf-{ch.label}",
            )

    @property
    def unavailability(self) -> float:
        """Steady-state per-channel downtime fraction."""
        if self.mttr is None:
            return 1.0
        return self.mttr / (self.mtbf + self.mttr)

    def _churn(self, ch: PhysChannel, stream: RandomStream):
        while True:
            yield self.env.timeout(stream.exponential(self.mtbf))
            if ch.faulty:
                continue  # someone else (a FaultPlan) holds it down
            ch.fail()
            self.failures += 1
            if self.severity == "hard":
                for worm in ch.owners():
                    if worm.state is PacketState.ACTIVE:
                        self.engine.abort_packet(worm)
                        self.killed_worms += 1
            if self.mttr is None:
                return  # permanent: this channel's churn is over
            yield self.env.timeout(stream.exponential(self.mttr))
            ch.repair()
            self.repairs += 1
