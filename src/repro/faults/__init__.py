"""Fault injection and recovery (the paper's Section 2 motivation, live).

The paper argues for dilated and bidirectional MINs partly on fault
tolerance: a unique-path TMIN loses (src, dst) pairs on any single
channel fault, while DMIN/BMIN keep alternative paths.  This package
turns that argument into a measurable subsystem:

* :mod:`repro.faults.plan` -- deterministic fault schedules
  (:class:`FaultPlan` / :class:`FaultEvent`): transient or permanent,
  channel- or whole-switch-level, soft (routing-table removal) or hard
  (wire cut, worms aborted mid-flight);
* :mod:`repro.faults.mtbf` -- stochastic churn (:class:`MTBFChurn`):
  exponential fail/repair per channel, the availability experiments'
  load knob;
* :mod:`repro.faults.recovery` -- source-side retry with exponential
  backoff (:class:`SourceRetry` / :class:`RetryPolicy`), surfacing
  delivered / failed / retried / dropped counts through the engine's
  stats into :class:`~repro.metrics.collector.Measurement`.

See ``experiments/availability.py`` for the throughput-vs-fault-rate
degradation sweeps and ``examples/fault_storm.py`` for a quick demo.
"""

from repro.faults.mtbf import MTBFChurn, fabric_channels
from repro.faults.plan import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    switch_output_channels,
)
from repro.faults.recovery import RetryPolicy, SourceRetry

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "MTBFChurn",
    "RetryPolicy",
    "SourceRetry",
    "fabric_channels",
    "switch_output_channels",
]
