"""Source-side recovery: retry FAILED packets with exponential backoff.

Wormhole switching drops a worm when its header finds every next-hop
channel faulty (the engine's ``_abort``).  Real machines recover at the
source: the sender times the message out and re-injects it.
:class:`SourceRetry` implements exactly that as a subscriber of the
engine's telemetry bus (:mod:`repro.obs.bus`) -- it listens to the
*cold* packet-lifecycle kinds (``offer``/``deliver``/``abort``) only,
so installing recovery costs the per-flit hot loop nothing:

* every FAILED packet is re-offered after an exponential backoff
  (``base_delay * factor**attempt``, capped, with ± ``jitter``
  randomization to avoid retry synchronization);
* attempts are capped (``max_attempts`` total injections of the same
  message); a message that exhausts them is *dropped* --
  ``stats.dropped_packets`` counts these, the paper-level "permanent
  degradation" signal;
* optionally each injection carries a timeout: a packet neither
  delivered nor failed within ``attempt_timeout`` cycles is aborted
  through :meth:`~repro.wormhole.engine.WormholeEngine.abort_packet`
  and takes the same retry path (guards against worms parked behind a
  persistent fault front).

Every re-injection increments ``stats.retried_packets``, so the
degradation accounting flows into
:class:`~repro.metrics.collector.Measurement` without further wiring.

Bounded admission (:mod:`repro.stability.admission`) interacts with
recovery in two ways, both handled here:

* a **shed** message (cold ``shed`` bus kind, ``PacketState.SHED``) is
  a *deliberate* drop, not a failure -- its outcome settles as
  ``"shed"`` and it is never retried;
* a **refused** re-injection (blocking policy: ``engine.offer``
  returned None, or shed-newest dropped the clone at the door) counts
  as a used attempt and takes another backoff, so the retry layer
  backs off of a saturated source instead of spinning.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.rng import RandomStream
from repro.wormhole.engine import WormholeEngine
from repro.wormhole.packet import Packet, PacketState


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule for source-side re-injection.

    ``max_attempts`` counts total injections (first try included), so
    ``max_attempts=1`` disables retries while keeping the accounting.
    """

    max_attempts: int = 5
    base_delay: float = 64.0      # cycles before the first retry
    factor: float = 2.0           # exponential growth per attempt
    max_delay: float = 4096.0     # backoff cap
    jitter: float = 0.25          # +- fraction randomized per retry
    attempt_timeout: float | None = None  # cycles per injection, None = off

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay <= 0 or self.factor < 1.0 or self.max_delay <= 0:
            raise ValueError("need base_delay > 0, factor >= 1, max_delay > 0")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.attempt_timeout is not None and self.attempt_timeout <= 0:
            raise ValueError("attempt_timeout must be positive")

    def nominal_delay(self, attempt: int) -> float:
        """Jitter-free backoff before attempt number ``attempt`` (1-based).

        The deterministic core of :meth:`delay`; harness-side users
        with no simulation RNG (e.g. the sweep-service supervisor's
        re-dispatch scheduling, where delays are wall seconds rather
        than cycles) reuse exactly this schedule.
        """
        return min(self.base_delay * self.factor ** (attempt - 1), self.max_delay)

    def delay(self, attempt: int, rng: RandomStream) -> float:
        """Backoff before re-injection number ``attempt`` (1-based)."""
        raw = self.nominal_delay(attempt)
        if self.jitter:
            raw *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(raw, 1.0)


class SourceRetry:
    """Installs retry-with-backoff recovery onto a live engine.

    Usage::

        retry = SourceRetry(engine, RetryPolicy(), RandomStream(7))
        ... offer traffic, run ...
        retry.quiesce()          # drain including pending retries
        retry.delivered_ratio()  # unique messages eventually delivered

    The manager identifies a *message* by its first injection's pid and
    follows it across re-injections; :attr:`outcomes` maps that root pid
    to ``"delivered"``, ``"dropped"`` or ``"shed"`` once settled.
    """

    def __init__(
        self,
        engine: WormholeEngine,
        policy: RetryPolicy | None = None,
        rng: RandomStream | None = None,
    ) -> None:
        self.engine = engine
        self.env = engine.env
        self.policy = policy if policy is not None else RetryPolicy()
        self.rng = rng if rng is not None else RandomStream(0, name="retry")
        #: pid -> (root pid, attempts used so far for that message)
        self._attempts: dict[int, tuple[int, int]] = {}
        #: root pid -> final outcome ("delivered" | "dropped")
        self.outcomes: dict[int, str] = {}
        self.pending_retries = 0
        self.retried = 0
        self.dropped = 0
        self.recovered = 0  # delivered on attempt >= 2
        self._reoffering = False  # True inside _reinject's offer call
        # Cold-kind bus subscriber: offer/deliver/abort only, so the
        # per-flit hot path stays untaxed (bus.hot remains False).
        engine.bus.attach(self)

    # -- bus callbacks -----------------------------------------------------

    def on_offer(self, t: float, p: Packet) -> None:
        # Re-injections pre-register themselves; anything else is a
        # fresh message on its first attempt.
        self._attempts.setdefault(p.pid, (p.pid, 1))
        if self.policy.attempt_timeout is not None:
            self.env.process(
                self._watchdog(p), name=f"retry-timeout-{p.pid}"
            )

    def on_deliver(self, t: float, p: Packet) -> None:
        root, attempts = self._attempts.pop(p.pid, (p.pid, 1))
        if attempts > 1:
            self.recovered += 1
        self.outcomes[root] = "delivered"

    def on_abort(self, t: float, p: Packet) -> None:
        self._on_fail(p)

    def on_shed(self, t: float, p: Packet) -> None:
        # Deliberate admission drop: settle the outcome, never retry.
        # Shed-oldest victims were QUEUED packets registered at offer
        # time (possibly retry clones: pop maps them to their root);
        # shed-newest rejects never entered the queue and -- unless
        # they are the clone a _reinject call is offering right now,
        # whose fate that call settles itself -- are fresh messages
        # whose whole life is this one shed event.
        if p.pid in self._attempts:
            root, _ = self._attempts.pop(p.pid)
            self.outcomes[root] = "shed"
        elif not self._reoffering:
            self.outcomes[p.pid] = "shed"

    def _on_fail(self, p: Packet) -> None:
        root, attempts = self._attempts.pop(p.pid, (p.pid, 1))
        if attempts >= self.policy.max_attempts:
            self.dropped += 1
            self.engine.stats.dropped_packets += 1
            self.outcomes[root] = "dropped"
            return
        self.pending_retries += 1
        self.env.process(
            self._reinject(p, root, attempts), name=f"retry-{root}"
        )

    # -- sim processes -----------------------------------------------------

    def _watchdog(self, p: Packet):
        yield self.env.timeout(self.policy.attempt_timeout)
        if p.state in (PacketState.QUEUED, PacketState.ACTIVE):
            # Abort triggers _on_fail, which schedules the retry.
            self.engine.abort_packet(p)

    def _reinject(self, p: Packet, root: int, attempts: int):
        yield self.env.timeout(self.policy.delay(attempts, self.rng))
        self.pending_retries -= 1
        self.retried += 1
        self.engine.stats.retried_packets += 1
        self._reoffering = True
        try:
            clone = self.engine.offer(p.src, p.dst, p.length)
        finally:
            self._reoffering = False
        if clone is None or clone.state is PacketState.SHED:
            # Bounded admission refused the re-injection (blocking
            # policy) or shed it at the door.  The attempt is spent;
            # either back off again or give the message up.
            if attempts + 1 >= self.policy.max_attempts:
                self.dropped += 1
                self.engine.stats.dropped_packets += 1
                self.outcomes[root] = "dropped"
                return
            self.pending_retries += 1
            self.env.process(
                self._reinject(p, root, attempts + 1), name=f"retry-{root}"
            )
            return
        # _on_offer already registered attempt 1; overwrite with truth.
        self._attempts[clone.pid] = (root, attempts + 1)

    # -- reporting ---------------------------------------------------------

    def delivered_ratio(self) -> float:
        """Fraction of settled messages that ended delivered."""
        if not self.outcomes:
            return float("nan")
        done = sum(1 for o in self.outcomes.values() if o == "delivered")
        return done / len(self.outcomes)

    def quiesce(self, max_cycles: int = 1_000_000) -> None:
        """Drain the network *and* the retry pipeline.

        Unlike :meth:`WormholeEngine.drain` this keeps running while
        backoff timers hold packets outside the network.
        """
        deadline = self.env.now + max_cycles
        self.engine.start()
        while (
            not self.engine.idle or self.pending_retries
        ) and self.env.now < deadline:
            self.env.run(until=min(self.env.now + 256, deadline))
        if not self.engine.idle or self.pending_retries:
            raise RuntimeError(
                f"retry pipeline failed to quiesce within {max_cycles} "
                f"cycles ({self.engine.in_flight} in flight, "
                f"{self.pending_retries} retries pending)"
            )

    def __repr__(self) -> str:
        return (
            f"<SourceRetry retried={self.retried} dropped={self.dropped} "
            f"recovered={self.recovered} pending={self.pending_retries}>"
        )
