"""Scheduled fault injection: deterministic fault plans.

A :class:`FaultPlan` is a declarative schedule of channel (or whole
switch) failures -- transient (fail at ``at``, repair at ``at +
duration``), or permanent (``duration=None``).  Installing the plan
into a running simulation spawns one sim process that applies each
event at its scheduled cycle, so channels flip ``faulty`` *mid-flight*
rather than only before the run starts.

Two severities:

* ``"soft"`` (default) -- the link disappears from the routing tables:
  new headers can no longer acquire it, worms already streaming across
  finish normally (the model the static ``PhysChannel.fail`` tests
  use).
* ``"hard"`` -- the wire is cut: additionally every worm currently
  holding a lane of the channel is aborted through
  :meth:`~repro.wormhole.engine.WormholeEngine.abort_packet`
  (requires passing the engine to :meth:`FaultPlan.install`).

Whole-switch failures name a ``(stage, switch)`` pair and expand to the
switch's output channels (a dead switch forwards nothing), for both the
unidirectional MINs and the BMIN.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.core import Environment
from repro.wormhole.channel import PhysChannel
from repro.wormhole.engine import WormholeEngine
from repro.wormhole.packet import PacketState
from repro.direct.network import DirectNetwork
from repro.wormhole.network import (
    BidirectionalNetwork,
    SimNetwork,
    UnidirectionalNetwork,
)

SEVERITIES = ("soft", "hard")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled failure.

    Parameters
    ----------
    at:
        Simulation cycle the fault strikes (relative to install time).
    channels:
        Channel labels to fail (see ``PhysChannel.label``); may be
        combined with ``switch``.
    switch:
        Optional ``(stage, switch_index)`` whole-switch failure.
    duration:
        Cycles until repair; ``None`` means permanent.
    severity:
        ``"soft"`` (routing-table removal) or ``"hard"`` (wire cut:
        worms on the channel are aborted too).
    """

    at: float
    channels: tuple[str, ...] = ()
    switch: Optional[tuple[int, int]] = None
    duration: Optional[float] = None
    severity: str = "soft"

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("fault time must be >= 0")
        if self.duration is not None and self.duration <= 0:
            raise ValueError("transient faults need a positive duration")
        if self.severity not in SEVERITIES:
            raise ValueError(f"severity must be one of {SEVERITIES}")
        if not self.channels and self.switch is None:
            raise ValueError("a fault event needs channels and/or a switch")

    @property
    def transient(self) -> bool:
        """True when the fault repairs itself after ``duration``."""
        return self.duration is not None


def switch_output_channels(
    network: SimNetwork, stage: int, switch: int
) -> list[PhysChannel]:
    """The output channels of one switch (what a dead switch silences).

    For the unidirectional MINs, stage ``s`` switch ``j`` drives the
    ``k`` link positions ``j*k .. j*k+k-1`` at boundary ``s+1`` (every
    dilated channel of each slot).  For the BMIN, a stage-``s`` switch
    drives its forward right lines (boundary ``s+1``, if any) and its
    backward left lines (boundary ``s``).  The direct topologies have
    one router per node and no stages: address it as ``(0, node)``; a
    dead router silences every outgoing fabric lane plus the node's
    delivery channel.
    """
    if isinstance(network, DirectNetwork):
        if stage != 0:
            raise ValueError(
                "direct topologies have a single router stage; "
                f"use stage 0, not {stage}"
            )
        if not 0 <= switch < network.N:
            raise ValueError(f"node {switch} out of range 0..{network.N - 1}")
        return network.node_output_channels(switch)
    if isinstance(network, UnidirectionalNetwork):
        spec = network.spec
        if not 0 <= stage < spec.n:
            raise ValueError(f"stage {stage} out of range 0..{spec.n - 1}")
        if not 0 <= switch < spec.switches_per_stage:
            raise ValueError(f"switch {switch} out of range")
        out: list[PhysChannel] = []
        for port in range(spec.k):
            out.extend(network.slots[(stage + 1, switch * spec.k + port)])
        return out
    if isinstance(network, BidirectionalNetwork):
        bmin = network.bmin
        out = []
        for line in bmin.right_lines_of_switch(stage, switch):
            out.append(network.fwd[(stage + 1, line)])
        for line in bmin.left_lines_of_switch(stage, switch):
            out.append(network.bwd[(stage, line)])
        return out
    raise TypeError(f"no switch model for {type(network).__name__}")


class FaultInjector:
    """Applies one :class:`FaultPlan` to a live network.

    Created by :meth:`FaultPlan.install`; holds counters for tests and
    reports (:attr:`injected`, :attr:`repaired`, :attr:`killed_worms`).
    """

    def __init__(
        self,
        plan: "FaultPlan",
        env: Environment,
        network: SimNetwork,
        engine: Optional[WormholeEngine] = None,
    ) -> None:
        if engine is None and any(e.severity == "hard" for e in plan.events):
            raise ValueError("hard fault events need the engine to kill worms")
        # Cross-check every named channel / switch against the actual
        # topology *now*, so a typo fails at install time with
        # suggestions instead of mid-simulation (or worse, silently
        # no-op'ing the whole experiment).
        plan.validate(network)
        self.plan = plan
        self.env = env
        self.network = network
        self.engine = engine
        self.injected = 0
        self.repaired = 0
        self.killed_worms = 0
        self._base = env.now
        for event in plan.events:
            env.process(self._run_event(event), name=f"fault@{event.at}")

    def _resolve(self, event: FaultEvent) -> list[PhysChannel]:
        channels = [self.network.find_channel(lbl) for lbl in event.channels]
        if event.switch is not None:
            channels.extend(
                switch_output_channels(self.network, *event.switch)
            )
        return channels

    def _run_event(self, event: FaultEvent):
        delay = self._base + event.at - self.env.now
        if delay > 0:
            yield self.env.timeout(delay)
        channels = self._resolve(event)
        for ch in channels:
            ch.fail()
            self.injected += 1
            if event.severity == "hard":
                for worm in ch.owners():
                    # A long worm may span several channels of this very
                    # event; kill it once.
                    if worm.state is PacketState.ACTIVE:
                        self.engine.abort_packet(worm)
                        self.killed_worms += 1
        if event.duration is not None:
            yield self.env.timeout(event.duration)
            for ch in channels:
                ch.repair()
                self.repaired += 1


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of fault events.

    Usage::

        plan = FaultPlan((
            FaultEvent(at=500, channels=("b1[3].0",), duration=2_000),
            FaultEvent(at=800, switch=(1, 2)),           # permanent
        ))
        injector = plan.install(env, engine.network, engine)
    """

    events: tuple[FaultEvent, ...]

    def __post_init__(self) -> None:
        if not self.events:
            raise ValueError("an empty fault plan is a no-op; refuse it")

    def validate(self, network: SimNetwork) -> None:
        """Cross-check the plan against a topology; raise on mismatch.

        Every channel label must name an actual channel of ``network``
        (unknown labels are reported with near-miss suggestions, see
        :meth:`SimNetwork.unknown_label_message`) and every
        ``(stage, switch)`` pair must resolve to output channels.  Run
        automatically at :meth:`install` time; call directly to
        pre-flight a plan (the static verifier does).
        """
        problems: list[str] = []
        for i, event in enumerate(self.events):
            for label in event.channels:
                try:
                    network.find_channel(label)
                except KeyError as exc:
                    problems.append(f"event[{i}] at t={event.at}: {exc.args[0]}")
            if event.switch is not None:
                try:
                    switch_output_channels(network, *event.switch)
                except (ValueError, TypeError) as exc:
                    problems.append(
                        f"event[{i}] at t={event.at}: switch {event.switch}: {exc}"
                    )
        if problems:
            raise ValueError(
                "fault plan does not match the topology:\n  "
                + "\n  ".join(problems)
            )

    def install(
        self,
        env: Environment,
        network: SimNetwork,
        engine: Optional[WormholeEngine] = None,
    ) -> FaultInjector:
        """Spawn the injector processes; events fire relative to now.

        Validates the plan against ``network`` first (see
        :meth:`validate`): mislabelled channels raise here, not
        mid-simulation.
        """
        return FaultInjector(self, env, network, engine)

    @classmethod
    def single(
        cls,
        at: float,
        channel: str,
        duration: Optional[float] = None,
        severity: str = "soft",
    ) -> "FaultPlan":
        """Convenience: one fault on one channel."""
        return cls(
            (
                FaultEvent(
                    at=at,
                    channels=(channel,),
                    duration=duration,
                    severity=severity,
                ),
            )
        )
