"""Runtime progress watchdog: deadlock vs. livelock vs. congestion.

The engine's built-in ``deadlock_watchdog`` counter only recognizes
*total* standstill (no flit moved, no lane granted) and can only raise
:class:`~repro.wormhole.engine.DeadlockError`.  This watchdog sees two
more states and can *recover*:

* **deadlock** -- packets in flight and the whole fabric frozen for
  ``deadlock_after`` consecutive cycles.  Nothing will ever move again
  without intervention.
* **livelock / starvation** -- the fabric moves flits (other worms
  progress) but some worm's own progress signature has not changed for
  ``stall_age`` cycles: it is parked behind a persistent occupancy it
  will not outlive on its own (an adversarial stream holding its only
  next-hop channel, a fault front, a starved allocation).
* **congestion** -- worms stall briefly but every one of them advances
  within ``stall_age``; the watchdog records nothing and touches
  nothing.  Post-saturation queueing is *supposed* to look like this.

Recovery (``recover=True``, the default) aborts the flagged worm
through :meth:`~repro.wormhole.engine.WormholeEngine.abort_packet` --
flits flushed, lanes released, ``failed`` hooks fired -- so a
source-side retry layer (:class:`repro.faults.recovery.SourceRetry`)
re-injects it with backoff exactly like a fault casualty; the message
is delayed, not lost.  With ``recover=False`` the watchdog is a pure
classifier: stall events are recorded and published (cold ``stall``
bus kind) and a *deadlock* still raises
:class:`~repro.wormhole.engine.DeadlockError` as before.

Progress is sampled every ``check_every`` cycles from a per-worm
signature ``(lanes acquired, head-lane flits sent, flits delivered)``
-- pure end-of-cycle engine state, so the watchdog's decisions are
bit-identical across the fast and reference engine paths
(``tests/differential``).  A worm in the fast path's free-run
fast-forward mode is progressing *by construction* (that is what the
mode means) and is exempted without reading its (deliberately stale)
lane counters.

Overhead when armed: one Python call per cycle plus an
O(in-flight-worms) sweep every ``check_every`` cycles;
``benchmarks/bench_stability.py`` gates it at <= 5%.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.wormhole.engine import DeadlockError, WormholeEngine
from repro.wormhole.packet import Packet

#: Watchdog verdicts.
DEADLOCK = "deadlock"
LIVELOCK = "livelock"
CONGESTION = "congestion"


@dataclass(frozen=True)
class StallEvent:
    """One watchdog intervention (or observation, with recovery off)."""

    t: float          # sim time of the check that flagged it
    pid: int          # the flagged worm
    age: int          # cycles without progress when flagged
    verdict: str      # DEADLOCK | LIVELOCK
    recovered: bool   # True when the worm was aborted for re-injection


class ProgressWatchdog:
    """Attaches to a live engine; see module docs.

    Parameters
    ----------
    check_every:
        Sampling cadence in cycles.  Signatures, ages, and verdicts
        only change at multiples of this, so it also quantizes
        ``stall_age`` / ``deadlock_after``.
    stall_age:
        Cycles a worm's signature may sit unchanged while the fabric
        moves before it is flagged LIVELOCK.  Size it well above the
        worst legitimate blocking spell (a maximum-length worm holding
        a channel end to end) or congestion will be misread.
    deadlock_after:
        Consecutive zero-progress cycles (packets in flight, nothing
        moving anywhere) before the fabric is declared DEADLOCK.
    recover:
        True aborts flagged worms (one per check) for source-side
        re-injection; False observes only -- livelocks are recorded,
        deadlock raises :class:`DeadlockError`.
    """

    def __init__(
        self,
        engine: WormholeEngine,
        check_every: int = 64,
        stall_age: int = 4096,
        deadlock_after: int = 1024,
        recover: bool = True,
    ) -> None:
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        if stall_age < check_every:
            raise ValueError("stall_age must be >= check_every")
        if deadlock_after < 1:
            raise ValueError("deadlock_after must be >= 1")
        self.engine = engine
        self.check_every = check_every
        self.stall_age = stall_age
        self.deadlock_after = deadlock_after
        self.recover = recover
        #: pid -> (signature, cycle the signature last changed).
        self._sig: dict[int, tuple[object, int]] = {}
        #: pids already flagged this stall episode (observe-only mode
        #: records each episode once, not once per check).
        self._flagged: set[int] = set()
        self._no_progress = 0
        self.events: list[StallEvent] = []
        self.aborted = 0
        self.deadlocks = 0
        self.livelocks = 0

    # -- engine hook (called once per cycle) -------------------------------

    def on_cycle(self, engine: WormholeEngine) -> None:
        """Per-cycle tick; cheap unless this is a sampling cycle."""
        if engine._progressed or engine._active_packets == 0:
            self._no_progress = 0
        else:
            self._no_progress += 1
        c = engine.cycles_run
        if c % self.check_every == 0:
            self._check(engine, c)

    # -- the sampled check -------------------------------------------------

    def _check(self, engine: WormholeEngine, c: int) -> None:
        if engine._active_packets == 0:
            if self._sig:
                self._sig.clear()
                self._flagged.clear()
            return
        worms = engine.in_flight_packets()
        sig = self._sig
        seen = set()
        for p in worms:
            pid = p.pid
            seen.add(pid)
            if p._lz_base >= 0:
                # Free-running fast-forward: progressing by definition
                # (its lane counters are deliberately stale -- do not
                # read them).  ``c`` differs every check, so the entry
                # always refreshes, mirroring the reference engine
                # where the same worm's counters visibly advance.
                s: object = c
            else:
                lanes = p.lanes
                if lanes:
                    head = lanes[-1]
                    s = (
                        len(lanes),
                        head.sent if head.owner is p else -1,
                        p.delivered_flits,
                    )
                else:
                    s = (0, -1, p.delivered_flits)
            prev = sig.get(pid)
            if prev is None or prev[0] != s:
                sig[pid] = (s, c)
                self._flagged.discard(pid)
        if len(sig) > len(seen):
            for pid in list(sig):
                if pid not in seen:
                    del sig[pid]
                    self._flagged.discard(pid)

        if self._no_progress >= self.deadlock_after:
            # Total standstill: classic wormhole deadlock (or a fault
            # configuration with every escape cut).  Break the cycle by
            # sacrificing the oldest worm -- deterministic, and the one
            # whose resources the most others are waiting behind.
            victim = min(worms, key=_victim_key)
            age = self._no_progress
            self.deadlocks += 1
            if self.recover:
                self._abort(engine, victim, age, DEADLOCK)
            else:
                self._record(engine, victim, age, DEADLOCK, recovered=False)
                raise DeadlockError(engine._deadlock_report())
            return

        # Fabric-wide progress exists; look for individually starved
        # worms (livelock).  One intervention per check keeps recovery
        # gentle -- the next sample handles the next-worst victim.
        worst: Packet | None = None
        worst_age = self.stall_age - 1
        for p in worms:
            pid = p.pid
            age = c - sig[pid][1]
            if age > worst_age or (
                worst is not None and age == worst_age and pid < worst.pid
            ):
                if pid in self._flagged:
                    continue
                worst = p
                worst_age = age
        if worst is None:
            return  # mere congestion: every worm advanced recently
        self.livelocks += 1
        if self.recover:
            self._abort(engine, worst, worst_age, LIVELOCK)
        else:
            self._flagged.add(worst.pid)
            self._record(engine, worst, worst_age, LIVELOCK, recovered=False)

    # -- interventions -----------------------------------------------------

    def _record(
        self,
        engine: WormholeEngine,
        p: Packet,
        age: int,
        verdict: str,
        recovered: bool,
    ) -> None:
        now = engine.env.now
        self.events.append(StallEvent(now, p.pid, age, verdict, recovered))
        if engine.bus.enabled:
            engine.bus.publish_stall(now, p, age, verdict)

    def _abort(
        self, engine: WormholeEngine, p: Packet, age: int, verdict: str
    ) -> None:
        self._record(engine, p, age, verdict, recovered=True)
        engine.stats.stall_aborted_packets += 1
        self.aborted += 1
        engine.abort_packet(p)
        self._sig.pop(p.pid, None)
        self._flagged.discard(p.pid)

    def __repr__(self) -> str:
        return (
            f"<ProgressWatchdog aborted={self.aborted} "
            f"deadlocks={self.deadlocks} livelocks={self.livelocks} "
            f"tracking={len(self._sig)}>"
        )


def _victim_key(p: Packet) -> tuple[float, int]:
    return (p.created, p.pid)
