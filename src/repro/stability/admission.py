"""Bounded source queues with pluggable admission policies.

The paper's sources queue FCFS without bound; its experiments stop at
the load where a queue first exceeds 100 messages, so unbounded growth
is never observed.  Past saturation it is the *only* thing observed:
queue memory grows linearly with simulated time and latency diverges.
A bounded-admission policy caps each source queue at ``capacity``
messages and decides what happens to the overflow:

* ``"block"`` -- the offer is refused (``engine.offer`` returns None);
  the source holds the message and re-offers later.  This models
  hardware backpressure into the producer and counts in
  ``stats.throttled_packets``.
* ``"shed-newest"`` (tail drop) -- the new message is dropped; counts
  in ``stats.shed_packets``.  Preserves the oldest (longest-waiting)
  work, the classic router-queue policy.
* ``"shed-oldest"`` (head drop) -- the head of the queue is dropped to
  admit the newcomer.  Bounds *queueing latency* rather than loss:
  under sustained overload every admitted-and-kept message is recent.

The engine owns the mechanism (see
:meth:`repro.wormhole.engine.WormholeEngine.offer`); the policy object
only supplies ``capacity`` and a per-overflow ``decide`` call, so
adaptive policies (e.g. mode switched by queue age or a governor
signal) plug in by overriding :meth:`BoundedQueue.decide`.

Shed messages publish the cold ``shed`` bus kind and end in
``PacketState.SHED``; they are deliberate drops, not failures, so the
failure hooks and ``abort`` events never fire for them and recovery
layers do not retry them.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The three built-in overflow decisions.
BLOCK = "block"
SHED_NEWEST = "shed-newest"
SHED_OLDEST = "shed-oldest"

ADMISSION_MODES = (BLOCK, SHED_NEWEST, SHED_OLDEST)


@dataclass(frozen=True)
class BoundedQueue:
    """A fixed-capacity admission policy with one static overflow mode.

    Install onto a live engine with :meth:`install` (or assign
    ``engine.admission`` directly)::

        BoundedQueue(capacity=128, mode=SHED_NEWEST).install(engine)

    ``capacity`` is in *messages* per source queue.  The default (128)
    sits just above the paper's 100-message sustainability criterion,
    so every sustainable point is admission-transparent: the policy
    only ever acts in the post-saturation regime.
    """

    capacity: int = 128
    mode: str = SHED_NEWEST

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("admission capacity must be >= 1")
        if self.mode not in ADMISSION_MODES:
            raise ValueError(
                f"unknown admission mode {self.mode!r}; "
                f"valid: {', '.join(ADMISSION_MODES)}"
            )

    def decide(self, engine, src: int) -> str:
        """Called by the engine when ``src``'s queue is at capacity.

        Returns one of :data:`ADMISSION_MODES`.  The base policy is
        static; subclasses may inspect the engine (queue ages, governor
        rates) to decide per overflow.
        """
        return self.mode

    def install(self, engine) -> "BoundedQueue":
        """Attach this policy to ``engine`` and return it (chainable)."""
        engine.admission = self
        return self
