"""Steady-state detection and per-point stability classification.

A post-saturation point cannot be summarized by "did a queue exceed
100 messages" -- past the knee *every* queue does.  What matters is
what the delivered-throughput time series settles into.  This module
implements the two standard pieces:

* **MSER truncation** (:func:`mser_truncation`) -- given a series of
  per-batch throughput samples, find the warmup prefix whose removal
  minimizes the standard error of the remaining mean (White's MSER
  rule, the usual alternative to eyeballed warmup).  The search is
  capped at half the series so a majority of the data always remains.
* **stability classes** (:func:`classify`) -- the truncated series is
  labelled

  - ``stable``: the steady-state mean holds near the saturation
    (knee) throughput with low variability -- the fabric sustains its
    peak under overload (what bounded admission + AIMD should buy);
  - ``metastable``: the mean survives but the series oscillates or
    drifts beyond the thresholds -- the fabric alternates between
    clearing and congesting, the Omega-MIN "unstable region" signature
    (arXiv:1202.1062);
  - ``collapsed``: the steady-state mean fell below
    ``collapse_ratio`` x the knee throughput -- post-saturation
    throughput collapse (tree saturation eating the fabric).

Pure functions over plain float sequences; the sweep in
:mod:`repro.experiments.stability` feeds them per-batch samples taken
during the measurement window.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

#: Stability classes, healthiest first.
STABLE = "stable"
METASTABLE = "metastable"
COLLAPSED = "collapsed"

STABILITY_CLASSES = (STABLE, METASTABLE, COLLAPSED)

_NAN = float("nan")


def mser_truncation(series: Sequence[float]) -> int:
    """Truncation index minimizing the MSER statistic.

    ``MSER(d) = s^2(d) / (n - d)`` where ``s^2(d)`` is the sample
    variance of ``series[d:]`` -- the squared standard error of the
    truncated mean.  The search runs ``d`` in ``[0, n // 2]`` (White's
    half-series rule: never discard the majority).  Returns 0 for
    series shorter than 4 samples.
    """
    n = len(series)
    if n < 4:
        return 0
    best_d, best = 0, math.inf
    for d in range(0, n // 2 + 1):
        tail = series[d:]
        m = len(tail)
        if m < 2:
            break
        mean = sum(tail) / m
        var = sum((x - mean) ** 2 for x in tail) / (m - 1)
        stat = var / m
        if stat < best:
            best, best_d = stat, d
    return best_d


@dataclass(frozen=True)
class SteadyState:
    """Summary of one throughput series after MSER truncation."""

    samples: int       # series length before truncation
    truncation: int    # batches discarded as warmup/transient
    mean: float        # steady-state mean of the retained batches
    cv: float          # coefficient of variation of retained batches
    drift: float       # relative late-half vs early-half mean change

    @property
    def retained(self) -> int:
        return self.samples - self.truncation


def analyze_series(series: Sequence[float]) -> SteadyState:
    """Truncate a throughput series and summarize its steady state."""
    n = len(series)
    if n == 0:
        return SteadyState(0, 0, _NAN, _NAN, _NAN)
    d = mser_truncation(series)
    tail = list(series[d:])
    m = len(tail)
    mean = sum(tail) / m
    if m < 2:
        return SteadyState(n, d, mean, _NAN, _NAN)
    var = sum((x - mean) ** 2 for x in tail) / (m - 1)
    std = math.sqrt(var)
    if mean > 0:
        cv = std / mean
    else:
        cv = math.inf if std > 0 else 0.0
    half = m // 2
    early = sum(tail[:half]) / half if half else mean
    late = sum(tail[half:]) / (m - half)
    drift = (late - early) / mean if mean > 0 else 0.0
    return SteadyState(n, d, mean, cv, drift)


def classify(
    steady: SteadyState,
    knee_throughput: Optional[float],
    collapse_ratio: float = 0.75,
    metastable_cv: float = 0.35,
    drift_limit: float = 0.30,
) -> str:
    """Label one point's steady state (see module docs).

    ``knee_throughput`` is the throughput measured at the saturation
    knee (same units as the series mean); None skips the collapse test
    (e.g. when the knee itself is being probed).
    """
    if steady.samples == 0 or math.isnan(steady.mean):
        return METASTABLE  # nothing settled enough to call stable
    if (
        knee_throughput is not None
        and knee_throughput > 0
        and steady.mean < collapse_ratio * knee_throughput
    ):
        return COLLAPSED
    if math.isnan(steady.cv):
        return METASTABLE
    if steady.cv > metastable_cv or abs(steady.drift) > drift_limit:
        return METASTABLE
    return STABLE
