"""Per-source AIMD injection governor, closed over the telemetry bus.

Bounded admission (:mod:`repro.stability.admission`) makes overload
*survivable*; the governor makes it *efficient*.  Each source node
carries a rate multiplier in ``[min_rate, max_rate]`` that scales its
offered load (the workload divides its mean inter-arrival time by the
multiplier -- see :class:`repro.traffic.workload.Workload`).  The loop
closes on congestion signals published on the engine's
:class:`~repro.obs.bus.EventBus` -- *cold* kinds only, so a governed
run never taxes the per-flit hot path:

* **multiplicative decrease** (``rate *= md_factor``) when the source
  shows distress: its queue length at offer time exceeds
  ``backlog_threshold``, one of its messages is shed or throttled by
  admission, or a delivery's end-to-end latency exceeds
  ``latency_target`` (if set).  Decreases are rate-limited per source
  by ``decrease_holdoff`` sim-cycles, the AIMD analogue of one backoff
  per RTT: a burst of signals from the same congestion episode causes
  one cut, not a collapse to ``min_rate``.
* **additive increase** (``rate += ai_step``) on each clean delivery
  from the source, probing back toward full offered load once the
  backlog drains.

The governor publishes every rate change on the cold ``rate`` bus kind
for observability, and keeps per-source counters for reporting.  All
arithmetic is deterministic (no RNG), so a governed run is bit-identical
across the fast and reference engine paths (``tests/differential``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.wormhole.packet import Packet


@dataclass(frozen=True)
class AIMDConfig:
    """Gains and thresholds of the per-source AIMD loop."""

    ai_step: float = 0.01          # additive increase per clean delivery
    md_factor: float = 0.5         # multiplicative decrease per signal
    min_rate: float = 0.05         # floor: sources never fully silence
    max_rate: float = 1.0          # ceiling: at most the configured load
    backlog_threshold: int = 32    # queue length that signals congestion
    latency_target: float | None = None  # cycles; None = backlog-only loop
    decrease_holdoff: float = 256.0      # min cycles between decreases

    def __post_init__(self) -> None:
        if not 0.0 < self.min_rate <= self.max_rate:
            raise ValueError("need 0 < min_rate <= max_rate")
        if self.ai_step <= 0:
            raise ValueError("ai_step must be positive")
        if not 0.0 < self.md_factor < 1.0:
            raise ValueError("md_factor must be in (0, 1)")
        if self.backlog_threshold < 1:
            raise ValueError("backlog_threshold must be >= 1")
        if self.latency_target is not None and self.latency_target <= 0:
            raise ValueError("latency_target must be positive")
        if self.decrease_holdoff < 0:
            raise ValueError("decrease_holdoff must be >= 0")


class AIMDGovernor:
    """Installs the AIMD loop onto a live engine's bus.

    Usage::

        governor = AIMDGovernor(engine)          # attaches to engine.bus
        workload = Workload(..., governor=governor)

    The governor is a plain cold-kind bus sink; detach with
    ``engine.bus.detach(governor)``.
    """

    def __init__(self, engine, config: AIMDConfig | None = None) -> None:
        self.engine = engine
        self.config = config if config is not None else AIMDConfig()
        n = engine.network.N
        #: Per-source rate multiplier (read by the workload per draw).
        self.rates: list[float] = [self.config.max_rate] * n
        self._last_decrease: list[float] = [float("-inf")] * n
        self.increases = 0
        self.decreases = 0
        engine.bus.attach(self)

    def rate_of(self, node: int) -> float:
        """The current rate multiplier of one source."""
        return self.rates[node]

    def mean_rate(self) -> float:
        """Fleet-wide average multiplier (reporting convenience)."""
        return sum(self.rates) / len(self.rates)

    # -- AIMD steps --------------------------------------------------------

    def _decrease(self, t: float, node: int) -> None:
        if t - self._last_decrease[node] < self.config.decrease_holdoff:
            return  # one cut per congestion episode
        self._last_decrease[node] = t
        old = self.rates[node]
        new = max(old * self.config.md_factor, self.config.min_rate)
        if new == old:
            return
        self.rates[node] = new
        self.decreases += 1
        bus = self.engine.bus
        if bus.enabled:
            bus.publish_rate(t, node, new)

    def _increase(self, t: float, node: int) -> None:
        old = self.rates[node]
        if old >= self.config.max_rate:
            return
        new = min(old + self.config.ai_step, self.config.max_rate)
        self.rates[node] = new
        self.increases += 1
        bus = self.engine.bus
        if bus.enabled:
            bus.publish_rate(t, node, new)

    # -- bus callbacks (cold kinds only) -----------------------------------

    def on_offer(self, t: float, p: Packet) -> None:
        if self.engine.queue_length(p.src) > self.config.backlog_threshold:
            self._decrease(t, p.src)

    def on_shed(self, t: float, p: Packet) -> None:
        self._decrease(t, p.src)

    def on_throttle(self, t: float, node: int) -> None:
        self._decrease(t, node)

    def on_deliver(self, t: float, p: Packet) -> None:
        target = self.config.latency_target
        if target is not None and (t - p.created) > target:
            self._decrease(t, p.src)
        else:
            self._increase(t, p.src)

    def __repr__(self) -> str:
        return (
            f"<AIMDGovernor mean_rate={self.mean_rate():.3f} "
            f"inc={self.increases} dec={self.decreases}>"
        )
