"""Overload robustness: keep every run well-behaved past saturation.

The paper only reports loads *up to* the saturation knee (its §5
100-message source-queue criterion); beyond that knee the bare
simulator grows source queues without bound and a stalled run is
indistinguishable from a slow one.  This package adds the four
mechanisms that make the post-saturation region a first-class,
measurable regime:

* :mod:`~repro.stability.admission` -- bounded source queues with
  pluggable policies (block/backpressure, shed-newest, shed-oldest),
  wired into :meth:`repro.wormhole.engine.WormholeEngine.offer` with
  shed/throttled counters flowing through ``EngineStats`` into
  :class:`~repro.metrics.collector.Measurement` and every export;
* :mod:`~repro.stability.governor` -- a per-source AIMD injection
  governor closing the loop on backlog/latency signals published on
  the engine's :class:`~repro.obs.bus.EventBus`;
* :mod:`~repro.stability.watchdog` -- a runtime progress watchdog that
  distinguishes deadlock (nothing moves) from livelock/starvation
  (flits move but a worm never advances) from mere congestion, and
  recovers stalled worms by timeout-abort-and-reinject through
  :class:`~repro.faults.recovery.SourceRetry`;
* :mod:`~repro.stability.steady` -- MSER-style steady-state truncation
  and per-point stability classification (stable / metastable /
  collapsed) feeding the post-saturation sweep in
  :mod:`repro.experiments.stability`.

All four are strictly opt-in: a bare engine pays one ``is None`` test
per cycle for the watchdog slot and one attribute read per offer for
the admission slot, and behaves bit-identically to the pre-package
simulator (certified by ``tests/differential``).
"""

from repro.stability.admission import (
    ADMISSION_MODES,
    BLOCK,
    SHED_NEWEST,
    SHED_OLDEST,
    BoundedQueue,
)
from repro.stability.governor import AIMDConfig, AIMDGovernor
from repro.stability.steady import (
    COLLAPSED,
    METASTABLE,
    STABLE,
    STABILITY_CLASSES,
    SteadyState,
    analyze_series,
    classify,
    mser_truncation,
)
from repro.stability.watchdog import (
    CONGESTION,
    DEADLOCK,
    LIVELOCK,
    ProgressWatchdog,
    StallEvent,
)

__all__ = [
    "ADMISSION_MODES",
    "BLOCK",
    "SHED_NEWEST",
    "SHED_OLDEST",
    "BoundedQueue",
    "AIMDConfig",
    "AIMDGovernor",
    "COLLAPSED",
    "METASTABLE",
    "STABLE",
    "STABILITY_CLASSES",
    "SteadyState",
    "analyze_series",
    "classify",
    "mser_truncation",
    "CONGESTION",
    "DEADLOCK",
    "LIVELOCK",
    "ProgressWatchdog",
    "StallEvent",
]
