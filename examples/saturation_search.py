#!/usr/bin/env python3
"""Saturation search: where does each network stop keeping up?

Bisects the offered load for the paper's sustainability criterion
(source queues <= 100 messages) under global uniform traffic, printing
the per-network saturation load, throughput and latency -- the single
headline number per design.

Run:  python examples/saturation_search.py
"""

from dataclasses import replace

from repro.analysis.cost import cost_comparison
from repro.experiments.config import SCALED
from repro.experiments.figures import FOUR_NETWORKS, uniform_workload
from repro.experiments.saturation import find_saturation
from repro.traffic.clusters import global_cluster


def main() -> None:
    # Long windows: the queue<=100 criterion needs time to bite at
    # super-saturation loads (short windows under-detect saturation).
    cfg = replace(SCALED, warmup_packets=200, measure_packets=3500)
    wb = uniform_workload(global_cluster(), cfg)
    costs = cost_comparison(4, 3)

    print("global uniform traffic, 64-node networks, scaled messages")
    print(f"{'network':<22} {'sat load':>9} {'thr %':>7} {'latency':>9} "
          f"{'gates':>7} {'thr/gate':>9}")
    for net in FOUR_NETWORKS:
        sat = find_saturation(net, wb, cfg, tolerance=0.04)
        gates = costs[net.kind].total_gate_proxy
        print(
            f"{net.label:<22} {sat.load:>9.3f} "
            f"{sat.throughput_percent:>7.1f} {sat.avg_latency:>9.1f} "
            f"{gates:>7.0f} {sat.throughput_percent / gates:>9.4f}"
        )
    print()
    print("Reading: the TMIN is cheapest per gate but saturates first; the")
    print("paper's cost argument compares the two equal-hardware designs --")
    print("DMIN (d=2) vs BMIN, ~6.1k vs ~6.0k gate proxy, same 384 wires --")
    print("where the DMIN's higher sustained throughput makes it the more")
    print("cost-effective choice (the paper's conclusion).")


if __name__ == "__main__":
    main()
