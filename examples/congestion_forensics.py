#!/usr/bin/env python3
"""Congestion forensics with the packet tracer.

Runs the shuffle-permutation workload (Fig. 20a's killer) on a TMIN
with tracing enabled, then shows *where* the congestion lives: the
blocking-hotspot ranking points at exactly the channels the static
analysis predicts are shared by four source/destination pairs, and a
victim packet's timeline shows the stalls.

Run:  python examples/congestion_forensics.py
"""

from repro.sim import Environment
from repro.sim.rng import RandomStream
from repro.topology.equivalence import channel_load
from repro.topology.mins import cube_min
from repro.topology.permutations import PerfectShuffle
from repro.wormhole import WormholeEngine, build_network
from repro.wormhole.trace import Tracer


def main() -> None:
    k, n = 4, 3
    env = Environment()
    engine = WormholeEngine(env, build_network("tmin", k, n), rng=RandomStream(1))
    engine.tracer = Tracer()

    shuffle = PerfectShuffle(k, n)
    pairs = [(s, shuffle(s)) for s in range(64) if s != shuffle(s)]

    print("offering two rounds of the shuffle permutation (60 pairs each)...")
    rs = RandomStream(2)
    packets = []
    for _ in range(2):
        for s, d in pairs:
            packets.append(engine.offer(s, d, rs.uniform_int(16, 48)))
    engine.drain(max_cycles=500_000)
    print(f"delivered {engine.stats.delivered_packets} packets "
          f"in {env.now:g} cycles\n")

    print("dynamic blocking hotspots (tracer):")
    for label, count in engine.tracer.blocking_hotspots(top=6):
        print(f"  {label:<16} blocked headers {count} times")
    print()

    print("static channel load (theory) -- the 4-sharing the paper names:")
    spec = cube_min(k, n)
    load = channel_load(spec, pairs)
    worst = sorted(load.items(), key=lambda kv: -kv[1])[:6]
    for (boundary, pos), paths in worst:
        print(f"  boundary {boundary}, position {pos:2d}: {paths} paths")
    print()

    slowest = max(packets, key=lambda p: p.latency)
    print("slowest packet's life:")
    print(engine.tracer.format_timeline(slowest.pid))


if __name__ == "__main__":
    main()
