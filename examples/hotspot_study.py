#!/usr/bin/env python3
"""Hot-spot study: how the four networks degrade around the knee.

Sweeps offered load through the hot node's saturation point for the
paper's 5% hot-spot workload (Fig. 19a) and prints the latency /
throughput table for each network.  Note the structural ceiling: with
P(hot) = (1+y)/(N+y) and y = N*x, the hot node's single delivery
channel caps aggregate steady-state throughput near 25% no matter the
network -- the networks differ in *latency* below the knee.

Run:  python examples/hotspot_study.py [hot_fraction]
"""

import sys
from dataclasses import replace

from repro.experiments.config import SCALED
from repro.experiments.figures import FOUR_NETWORKS, hotspot_workload
from repro.experiments.report import render_sweep
from repro.experiments.runner import sweep
from repro.traffic.clusters import global_cluster


def main() -> None:
    x = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    n_members = 64
    y = n_members * x
    p_hot = (1 + y) / (n_members + y)
    print(f"hot-spot fraction x = {x:.0%}  ->  y = Nx = {y:.1f}, "
          f"P(hot) = {p_hot:.1%} of all messages")
    print(f"structural knee: aggregate throughput <= "
          f"{100 / (n_members * p_hot):.1f}% of capacity\n")

    cfg = replace(
        SCALED,
        loads=(0.05, 0.10, 0.15, 0.20, 0.25),
        warmup_packets=200,
        measure_packets=800,
    )
    wb = hotspot_workload(global_cluster(), x, cfg)
    for net in FOUR_NETWORKS:
        print(render_sweep(sweep(net, wb, cfg, label=net.label)))
        print()
    print("Reading: DMIN keeps the lowest latency as the knee nears; the")
    print("TMIN climbs fastest (single path through the saturation tree).")


if __name__ == "__main__":
    main()
