#!/usr/bin/env python3
"""Does credit-aware adaptivity actually spread torus traffic?  Look.

The direct topologies (``repro.direct``) route node-to-node instead of
through switch stages.  Under dimension-order routing every (src, dst)
pair uses ONE fixed minimal path, so hotspot traffic piles onto the
same few links; the adaptive router may take any minimal direction,
scored by downstream credit, with a DOR-restricted escape lane keeping
it deadlock-free (the scheme ``python -m repro.verify`` certifies).

This example runs the same seeded mild-hotspot workload on a 4x4x4
torus under both routers and renders the per-direction utilization
heatmaps (rows ``x+ .. z-``; one cell per virtual lane) plus the
blocked-time-ranked hot-channel table.  Under DOR bright cells mark the
fixed paths into the hot node; adaptivity spreads them by routing
around the congestion it can see in its credit counters, buying higher
delivered throughput at lower latency.

Run:  python examples/torus_adaptive.py [load]
"""

import sys

from repro.experiments.config import SMOKE, NetworkConfig
from repro.experiments.traced import run_traced_point
from repro.experiments.workload_spec import WorkloadSpec


def main() -> None:
    load = float(sys.argv[1]) if len(sys.argv) > 1 else 0.7
    spec = WorkloadSpec(pattern="hotspot", hot_fraction=0.05)
    print(
        f"5% hotspot traffic on a 4x4x4 torus at offered load "
        f"{load:.0%} (smoke fidelity)\n"
    )
    for router in ("dor", "adaptive"):
        network = NetworkConfig("torus3d", router=router)
        m, obs = run_traced_point(network, spec, load, SMOKE)
        print(f"--- {network.label} ---")
        print(
            f"throughput {m.throughput_percent:5.1f}%   "
            f"latency p50 {m.p50_latency:6.1f}  p99 {m.p99_latency:6.1f} cycles"
        )
        print()
        print(obs.contention.stage_heatmap())
        print()
        elapsed = obs.contention.elapsed
        print("hottest channels (blocked header-cycles attributed):")
        for led in obs.contention.hot_channels(top=5):
            print(
                f"  {led.label:>16}  util {led.utilization(elapsed) * 100:5.1f}%  "
                f"blocked {led.blocked_time:8.1f}"
            )
        print()
    print("Reading the heatmaps: the dlv row's brightest cell is the hotspot")
    print("sink -- both routers drain the same endpoints.  The difference is")
    print("in the fabric rows: DOR funnels every worm over its one fixed")
    print("minimal path, so a few cells glow while neighbours idle; adaptive")
    print("routing spreads the same worms over every minimal direction (watch")
    print("the rows even out), buying higher throughput and lower latency at")
    print("identical offered load.  The escape lanes (.e0/.e1, the dateline")
    print("pair) stay nearly dark: they are a deadlock-freedom guarantee,")
    print("not a bandwidth resource.")


if __name__ == "__main__":
    main()
