#!/usr/bin/env python3
"""Quickstart: simulate one network under uniform traffic.

Builds the paper's 64-node two-dilated cube MIN (the winner of the
study), offers uniform traffic at 40% of injection bandwidth, and prints
the steady-state latency/throughput measurement.

Run:  python examples/quickstart.py [tmin|dmin|vmin|bmin] [load]
"""

import sys

from repro.experiments.runner import _run_until_delivered
from repro.metrics.collector import MeasurementWindow
from repro.sim import Environment
from repro.sim.rng import RandomStream
from repro.traffic.clusters import global_cluster
from repro.traffic.patterns import UniformPattern
from repro.traffic.workload import MessageSizeModel, Workload
from repro.wormhole import WormholeEngine, build_network


def main() -> None:
    kind = sys.argv[1] if len(sys.argv) > 1 else "dmin"
    load = float(sys.argv[2]) if len(sys.argv) > 2 else 0.4

    # 1. The simulation environment and the network (64 nodes, 4x4
    #    switches, 3 stages -- the paper's geometry).
    env = Environment()
    network = build_network(kind, k=4, n=3, topology="cube")
    engine = WormholeEngine(env, network, rng=RandomStream(42, "engine"))

    # 2. Uniform Poisson traffic at the requested offered load, with
    #    short messages so the example finishes in seconds (use
    #    MessageSizeModel.paper() for the paper's 8-1024 flits).
    workload = Workload(
        global_cluster(),
        UniformPattern,
        offered_load=load,
        sizes=MessageSizeModel.scaled(),
    )
    workload.install(env, engine, RandomStream(42, "workload"))
    engine.start()

    # 3. Warm up, then measure a steady-state window.
    _run_until_delivered(engine, target=300, deadline=50_000)
    window = MeasurementWindow(engine)
    window.begin()
    _run_until_delivered(engine, target=300 + 1_500, deadline=env.now + 100_000)
    m = window.finish()

    print(f"network : {kind.upper()} (64 nodes, 4x4 switches, 3 stages)")
    print(f"load    : {load:.0%} of injection bandwidth per node")
    print(f"cycles  : {m.cycles:.0f} measured ({m.delivered_packets} packets)")
    print(f"latency : {m.avg_latency:.1f} cycles avg "
          f"({m.avg_latency_us:.2f} us at 20 flits/us), p95 {m.p95_latency:.0f}")
    print(f"thruput : {m.throughput_percent:.1f}% of max theoretical")
    print(f"queues  : max {m.max_queue_len} "
          f"({'sustainable' if m.sustainable else 'saturated'})")


if __name__ == "__main__":
    main()
