#!/usr/bin/env python3
"""Permutation traffic showdown (Fig. 20) with its static explanation.

First computes the *static* channel contention of the shuffle and
2nd-butterfly permutations on the 64-node cube MIN -- the 4-way channel
sharing that dooms TMIN and VMIN -- then simulates all four networks at
one heavy load and shows the dynamic consequence.

Run:  python examples/permutation_showdown.py
"""

from dataclasses import replace

from repro.experiments.config import SCALED
from repro.experiments.figures import (
    FOUR_NETWORKS,
    butterfly_workload,
    shuffle_workload,
)
from repro.experiments.runner import run_point
from repro.topology.equivalence import admissible, max_channel_contention
from repro.topology.mins import cube_min
from repro.topology.permutations import ButterflyPermutation, PerfectShuffle


def static_analysis() -> None:
    spec = cube_min(4, 3)
    for name, perm in (
        ("perfect shuffle", PerfectShuffle(4, 3)),
        ("2nd butterfly", ButterflyPermutation(4, 3, 2)),
    ):
        pairs = [(s, perm(s)) for s in range(64) if s != perm(s)]
        contention = max_channel_contention(spec, pairs)
        ok = admissible(spec, [perm(s) for s in range(64)])
        print(
            f"  {name:16}: {len(pairs)} active pairs, worst channel shared "
            f"by {contention} paths, admissible={ok}"
        )
        print(
            f"    -> a single-channel network (TMIN/VMIN) caps at "
            f"~{100 // contention}% throughput for this pattern"
        )


def main() -> None:
    print("Static contention on the 64-node cube MIN (Section 5.3.3):")
    static_analysis()
    print()

    cfg = replace(SCALED, warmup_packets=200, measure_packets=1000)
    load = 0.9
    for wb_name, wb in (
        ("shuffle", shuffle_workload(cfg)),
        ("2nd butterfly", butterfly_workload(cfg, i=2)),
    ):
        print(f"simulated at offered load {load:.0%} ({wb_name} pattern):")
        for net in FOUR_NETWORKS:
            m = run_point(net, wb, load, cfg)
            print(
                f"  {net.label:20} thr={m.throughput_percent:5.1f}%  "
                f"lat={m.avg_latency:8.1f} cyc"
            )
        print()
    print("DMIN's spare lanes and the BMIN's multiple up-paths dodge the")
    print("static conflicts; TMIN serializes on them and VMIN's fair")
    print("flit-multiplexing makes every contender equally slow.")


if __name__ == "__main__":
    main()
