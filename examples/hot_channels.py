#!/usr/bin/env python3
"""Where exactly does VMIN's shuffle traffic collapse?  Ask the network.

Fig. 20 shows the VMIN saturating near 25% under the perfect-shuffle
permutation while the DMIN sails on.  The *static* explanation (4-way
channel sharing on the unique-path cube MIN) is in
``permutation_showdown.py``; this example shows the *dynamic* picture:
a traced run (:func:`repro.experiments.traced.run_traced_point`) with
the contention-attribution sink attached, rendered as a stage-level
utilization heatmap plus the blocked-time-ranked hot-channel table.

On the VMIN the b1 stage pins at 100% on exactly the channels the
shuffle permutation forces four paths through -- every other channel
idles -- while the DMIN's second lanes spread the same conflicts out.

Run:  python examples/hot_channels.py [load]
"""

import sys

from repro.experiments.config import SMOKE, NetworkConfig
from repro.experiments.traced import run_traced_point
from repro.experiments.workload_spec import WorkloadSpec


def main() -> None:
    load = float(sys.argv[1]) if len(sys.argv) > 1 else 0.8
    spec = WorkloadSpec(pattern="shuffle")
    print(f"perfect-shuffle permutation at offered load {load:.0%} (smoke fidelity)\n")
    for kind in ("vmin", "dmin"):
        network = NetworkConfig(kind)
        m, obs = run_traced_point(network, spec, load, SMOKE)
        print(f"--- {network.label} ---")
        print(
            f"throughput {m.throughput_percent:5.1f}%   "
            f"latency p50 {m.p50_latency:6.1f}  p99 {m.p99_latency:6.1f} cycles"
        )
        print()
        print(obs.contention.stage_heatmap())
        print()
        elapsed = obs.contention.elapsed
        print("hottest channels (blocked header-cycles attributed):")
        for led in obs.contention.hot_channels(top=5):
            print(
                f"  {led.label:>10}  util {led.utilization(elapsed) * 100:5.1f}%  "
                f"blocked {led.blocked_time:8.1f}"
            )
        print()
    print("Reading the heatmaps: both b1 rows show the same sparse picket of")
    print("'@' columns -- the channels the shuffle forces four paths through,")
    print("saturated while their neighbours idle.  On the VMIN each picket is")
    print("ONE wire: virtual channels multiplex the contenders fairly but")
    print("cannot add bandwidth, so throughput caps near 25%.  On the DMIN")
    print("each picket is TWO physical lanes (.0 and .1), which is why its")
    print("blocked time halves and its throughput doubles.  (Use the CLI's")
    print("--trace to open the same run as a Perfetto timeline.)")


if __name__ == "__main__":
    main()
