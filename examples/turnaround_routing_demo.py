#!/usr/bin/env python3
"""Turnaround routing walkthrough (Section 3, Figs. 7-10, 13).

Recreates the paper's running example -- routing 001 -> 101 through an
8-node butterfly BMIN -- then counts shortest paths (Theorem 1) and
shows the fat-tree view (Fig. 13).

Run:  python examples/turnaround_routing_demo.py
"""

from repro.routing.turnaround import TurnaroundRouter
from repro.topology.bmin import BidirectionalMIN, first_difference
from repro.topology.fattree import FatTree


def addr(x: int, n: int = 3) -> str:
    return format(x, f"0{n}b")


def main() -> None:
    bmin = BidirectionalMIN(2, 3)
    router = TurnaroundRouter(bmin)
    s, d = 0b001, 0b101

    print(f"8-node butterfly BMIN of 2x2 switches; route {addr(s)} -> {addr(d)}")
    t = first_difference(s, d, 2, 3)
    print(f"FirstDifference({addr(s)}, {addr(d)}) = {t} "
          f"(the message must turn at stage G_{t})\n")

    print("Fig. 7's algorithm, step by step (forward choices = [1, 0]):")
    for stage, move, port in router.walk(s, d, forward_choices=[1, 0]):
        print(f"  stage G_{stage}: {move.value:<10} -> output port {port}")
    print()

    paths = bmin.enumerate_shortest_paths(s, d)
    print(f"Theorem 1: k^t = 2^{t} = {len(paths)} shortest paths, "
          f"each of length 2(t+1) = {paths[0].length} channels:")
    for p in paths:
        up = " -> ".join(addr(line) for line in p.up)
        down = " -> ".join(addr(line) for line in reversed(p.down))
        print(f"  up: {up}   (turn)   down: {down}")
    print()

    print("Path counts from node 000 (Figs. 9-10):")
    for dest in range(1, 8):
        print(
            f"  000 -> {addr(dest)}: t={bmin.turn_stage(0, dest)}, "
            f"{bmin.shortest_path_count(0, dest)} paths, "
            f"{bmin.path_length(0, dest)} channels"
        )
    print()

    ft = FatTree(bmin)
    print("Fat-tree view (Fig. 13): LCA routing == turnaround routing")
    lca = ft.lca(s, d)
    print(f"  LCA({addr(s)}, {addr(d)}) is at level {lca.level} "
          f"(= t + 1), covering leaves {ft.leaves(lca)}")
    for level in range(1, 4):
        v = ft.vertices_at_level(level)[0]
        print(
            f"  level-{level} vertex: {ft.leaf_count(v)} leaves, "
            f"{ft.parent_link_count(v)} parent links, "
            f"aggregates switches {ft.switch_group(v)}"
        )
    print("\nDeadlock-freedom (Section 3.2.1): dependency graph acyclic =",
          bmin.is_deadlock_free())


if __name__ == "__main__":
    main()
