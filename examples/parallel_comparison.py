#!/usr/bin/env python3
"""Parallel four-network comparison with ASCII curves.

Runs the Fig. 18a comparison (four networks, global uniform traffic)
across a process pool -- every (network, load) point in its own worker,
bit-identical to the sequential runner -- then draws the
latency-vs-throughput curves as text.

Run:  python examples/parallel_comparison.py [workers]
"""

import sys
import time
from dataclasses import replace

from repro.experiments.config import SCALED
from repro.experiments.figures import FOUR_NETWORKS
from repro.experiments.parallel import parallel_matrix
from repro.experiments.plotting import ascii_curve_plot
from repro.experiments.workload_spec import WorkloadSpec


def main() -> None:
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else None
    cfg = replace(
        SCALED, loads=(0.1, 0.2, 0.4, 0.6, 0.8, 1.0), measure_packets=800
    )
    spec = WorkloadSpec(pattern="uniform")

    start = time.perf_counter()
    sweeps = parallel_matrix(
        list(FOUR_NETWORKS), spec, cfg, max_workers=workers
    )
    elapsed = time.perf_counter() - start
    print(
        f"{len(FOUR_NETWORKS) * len(cfg.loads)} simulation points in "
        f"{elapsed:.1f}s across {workers or 'all'} workers\n"
    )

    for s in sweeps:
        print(f"{s.label:<34} max sustained {s.max_sustained_throughput():5.1f}%")
    print()
    # Clip the y axis: deep-saturation latencies would squash the knees.
    print(ascii_curve_plot(sweeps, max_latency=800))


if __name__ == "__main__":
    main()
