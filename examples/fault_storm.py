#!/usr/bin/env python3
"""Fault storm: mid-simulation wire cuts, source retry, DMIN vs TMIN.

The paper's Section 2 argues for dilated MINs by fault tolerance: a
unique-path TMIN loses (src, dst) pairs on any single channel fault,
while a DMIN routes around it over the sibling lane. This demo makes
the argument concrete: the *same* hard (wire-cut) fault storm strikes
both networks mid-flight while a source-side retry layer re-injects
the casualties with exponential backoff.

Expected outcome: the DMIN absorbs the storm (worms aborted, retried,
~all eventually delivered); the TMIN degrades permanently (retries
re-roll the same dice until the budget runs out, messages dropped).

Run:  python examples/fault_storm.py
"""

from repro.faults import FaultEvent, FaultPlan, RetryPolicy, SourceRetry
from repro.metrics.collector import MeasurementWindow
from repro.sim import Environment
from repro.sim.rng import RandomStream
from repro.wormhole import WormholeEngine, build_network

#: Two fabric wires cut mid-run, each down for 30k cycles -- far longer
#: than the retry layer's total backoff budget, so only a network with
#: alternative paths can out-route (rather than out-wait) the storm.
STORM = FaultPlan(
    tuple(
        FaultEvent(at=at, channels=(label,), duration=30_000.0, severity="hard")
        for at, label in ((150.0, "b1[3].0"), (250.0, "b2[5].0"))
    )
)


def storm_run(kind: str, seed: int = 21):
    """200 random messages through one 8-node network under the storm."""
    env = Environment()
    engine = WormholeEngine(
        env, build_network(kind, k=2, n=3), rng=RandomStream(seed)
    )
    retry = SourceRetry(
        engine,
        RetryPolicy(max_attempts=4, base_delay=32, max_delay=256, jitter=0.0),
        RandomStream(seed + 1),
    )
    STORM.install(env, engine.network, engine)

    window = MeasurementWindow(engine)
    window.begin()
    rs = RandomStream(seed + 2)
    for _ in range(200):
        src = rs.uniform_int(0, 7)
        dst = rs.uniform_int(0, 6)
        if dst >= src:
            dst += 1  # uniform over the *other* nodes
        engine.offer(src, dst, rs.uniform_int(8, 24))
    retry.quiesce(max_cycles=500_000)  # drain network + retry pipeline
    return window.finish(), retry


def main() -> None:
    print("fault storm: 2 hard wire cuts at t=150/250, 30k cycles each")
    print("retry: <= 4 attempts, backoff 32 -> 256 cycles\n")
    print(
        f"{'net':>5} | {'delivered':>9} | {'fail':>5} | {'retry':>5} "
        f"| {'drop':>5} | eventual delivery"
    )
    print("-" * 62)
    for kind in ("dmin", "tmin"):
        m, retry = storm_run(kind)
        print(
            f"{kind.upper():>5} | {m.delivered_packets:9d} | "
            f"{m.failed_packets:5d} | {m.retried_packets:5d} | "
            f"{m.dropped_packets:5d} | {retry.delivered_ratio():.1%}"
        )
    print(
        "\nThe DMIN retries route around the cut wires over sibling"
        "\nlanes; the TMIN's unique paths make every retry fail until"
        "\nthe attempt budget is exhausted -- permanent degradation."
    )


if __name__ == "__main__":
    main()
