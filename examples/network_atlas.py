#!/usr/bin/env python3
"""Network atlas: text renderings of every topology in the paper.

Prints the 8-node versions of the paper's structural figures:
the two TMIN wirings (Fig. 4), the connection patterns behind them
(Definitions 1-2), the butterfly BMIN (Fig. 6) and its fat-tree view
(Fig. 13).

Run:  python examples/network_atlas.py [k] [n]
"""

import sys

from repro.topology.bmin import BidirectionalMIN
from repro.topology.drawing import (
    connection_table,
    render_bmin,
    render_fat_tree,
    render_min,
)
from repro.topology.fattree import FatTree
from repro.topology.mins import butterfly_min, cube_min, omega_min
from repro.topology.permutations import ButterflyPermutation, PerfectShuffle


def main() -> None:
    k = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 3

    print("=" * 64)
    print("Connection patterns (Definitions 1 and 2)")
    print("=" * 64)
    print(connection_table(PerfectShuffle(k, n), k, n))
    print()
    print(connection_table(ButterflyPermutation(k, n, n - 1), k, n))
    print()

    for builder in (cube_min, butterfly_min, omega_min):
        print("=" * 64)
        print(render_min(builder(k, n)))
        print()

    print("=" * 64)
    bmin = BidirectionalMIN(k, n)
    print(render_bmin(bmin))
    print()
    print("=" * 64)
    print(render_fat_tree(FatTree(bmin)))


if __name__ == "__main__":
    main()
