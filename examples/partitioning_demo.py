#!/usr/bin/env python3
"""Network partitionability demo (Section 4, Figs. 14-15, Theorems 2-4).

Shows, constructively, why the cube MIN partitions cleanly into cube
clusters while the butterfly MIN must either shrink or share channels --
and why the butterfly BMIN (fat tree) localizes base-cube traffic.

Run:  python examples/partitioning_demo.py
"""

from repro.partition.analysis import (
    bmin_cluster_line_usage,
    bmin_clusters_are_contention_free,
    check_partition,
)
from repro.partition.cubes import Cube
from repro.topology.bmin import BidirectionalMIN
from repro.topology.mins import butterfly_min, cube_min


def show(title: str, report) -> None:
    print(f"--- {title}")
    print(report)
    print()


def main() -> None:
    print("=" * 70)
    print("8-node networks of 2x2 switches (the paper's Figs. 14 and 15)")
    print("=" * 70)
    clusters = [Cube.from_kary(p, 2) for p in ("0XX", "1X0", "1X1")]
    show(
        "Fig. 14: cube MIN with clusters 0XX, 1X0, 1X1",
        check_partition(cube_min(2, 3), clusters),
    )
    show(
        "Fig. 15a: butterfly MIN, channel-reduced clustering 0XX, 10X, 11X",
        check_partition(
            butterfly_min(2, 3),
            [Cube.from_kary(p, 2) for p in ("0XX", "10X", "11X")],
        ),
    )
    show(
        "Fig. 15b: butterfly MIN, channel-shared clustering XX0, XX1",
        check_partition(
            butterfly_min(2, 3),
            [Cube.from_kary(p, 2) for p in ("XX0", "XX1")],
        ),
    )

    print("=" * 70)
    print("The paper's 64-node system (4x4 switches): Section 5.1 clusterings")
    print("=" * 70)
    cl16 = [Cube.from_kary(f"{i}XX", 4) for i in range(4)]
    show("cube MIN, cluster-16 (0XX..3XX)", check_partition(cube_min(4, 3), cl16))
    show(
        "butterfly MIN, the same clusters (channel-reduced: 16 -> 4 channels)",
        check_partition(butterfly_min(4, 3), cl16),
    )
    shared = [Cube.from_kary(f"XX{i}", 4) for i in range(4)]
    show(
        "butterfly MIN, channel-shared (XX0..XX3: spread over all 64)",
        check_partition(butterfly_min(4, 3), shared),
    )
    halves = [Cube.from_bits("0XXXXX"), Cube.from_bits("1XXXXX")]
    show(
        "Theorem 2: cube MIN with *binary* cubes (two 32-node halves)",
        check_partition(cube_min(4, 3), halves),
    )

    print("=" * 70)
    print("Theorem 4: the butterfly BMIN localizes base-cube traffic")
    print("=" * 70)
    bmin = BidirectionalMIN(2, 3)
    base = [Cube.from_kary(p, 2) for p in ("0XX", "10X", "11X")]
    print(
        "base cubes 0XX, 10X, 11X contention-free:",
        bmin_clusters_are_contention_free(bmin, base),
    )
    for cube in base:
        usage = bmin_cluster_line_usage(bmin, cube)
        counts = [len(usage[b]) for b in range(bmin.n)]
        print(
            f"  {cube.pattern(2)}: lines used per boundary {counts} "
            f"(traffic never climbs above its subtree)"
        )
    nonbase = [Cube.from_kary("XX0", 2), Cube.from_kary("XX1", 2)]
    print(
        "non-base cubes XX0, XX1 contention-free:",
        bmin_clusters_are_contention_free(bmin, nonbase),
        "(they must share the upper stages)",
    )


if __name__ == "__main__":
    main()
