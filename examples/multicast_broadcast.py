#!/usr/bin/env python3
"""Software multicast demo (the paper's future-work reference [32]).

Plans and simulates a broadcast from node 0 to every other node of the
8-node butterfly BMIN, comparing the naive sequential plan against the
binomial block plan, and shows that the binomial phases are
contention-free on the fat tree.

Run:  python examples/multicast_broadcast.py
"""

from repro.multicast.runner import run_multicast
from repro.multicast.schedule import (
    binomial_schedule,
    phase_conflicts,
    sequential_schedule,
)
from repro.topology.bmin import BidirectionalMIN
from repro.wormhole import build_network


def main() -> None:
    source, dests = 0, list(range(1, 8))
    bmin = BidirectionalMIN(2, 3)

    print("binomial broadcast plan (0 -> all, 8-node BMIN):")
    sched = binomial_schedule(source, dests)
    for i, phase in enumerate(sched):
        conflicts = phase_conflicts(bmin, phase)
        steps = ", ".join(map(repr, phase))
        print(f"  phase {i}: {steps}   (down-channel conflicts: {conflicts})")
    print()

    for name, plan in (
        ("sequential", sequential_schedule(source, dests)),
        ("binomial", sched),
    ):
        result = run_multicast(
            build_network("bmin", 2, 3),
            source,
            dests,
            plan,
            message_length=64,
        )
        print(f"{name:>10}: {result}")
    print()
    print("The binomial plan reaches all 7 destinations in ceil(log2(8)) = 3")
    print("message times; the sequential plan pays one message time each.")


if __name__ == "__main__":
    main()
