"""Regenerate Fig. 19: global hot-spot traffic at 5% and 10%.

Paper's claims: every network congests relative to Fig. 18a; DMIN stays
best; TMIN is worst with BMIN close; 10% is much worse than 5%.  With
the paper's hot-spot formula (y = N*x) the hot node's delivery channel
caps steady-state throughput, so the network differences show in the
latency below the knee -- the checks probe exactly that.
"""

from benchmarks.conftest import save_and_print
from repro.experiments.figures import fig19
from repro.experiments.report import render_figure, shape_checks


def test_fig19(benchmark, results_dir, bench_cfg):
    fig = benchmark.pedantic(fig19, args=(bench_cfg,), rounds=1, iterations=1)
    checks = shape_checks(fig)
    text = render_figure(fig) + "\n\nshape checks:\n" + "\n".join(
        f"  {c}" for c in checks
    )
    save_and_print(results_dir, "fig19", text)

    by_claim = {c.claim: c for c in checks}
    assert by_claim[
        "hot 5%: all four networks congested (capped well below uniform)"
    ].passed
    assert by_claim[
        "hot 5%: DMIN lowest latency below the knee (load 0.15)"
    ].passed
    assert by_claim[
        "hot 10%: all four networks congested (capped well below uniform)"
    ].passed
    for kind in ("TMIN", "DMIN", "VMIN", "BMIN"):
        assert by_claim[f"{kind}: 10% hot spot hurts more than 5%"].passed
