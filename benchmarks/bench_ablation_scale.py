"""Ablation: other network and switch sizes (the paper's future work).

Runs the TMIN-vs-DMIN-vs-BMIN comparison at 16 nodes (4x4 switches, two
stages), 64 nodes (the paper's geometry) and 64 nodes built from 2x2
switches (six stages), checking that the paper's ordering is not an
artifact of the single evaluated geometry.
"""

from dataclasses import replace

from benchmarks.conftest import save_and_print
from repro.experiments.config import NetworkConfig
from repro.experiments.runner import run_point
from repro.traffic.clusters import global_cluster
from repro.traffic.patterns import UniformPattern
from repro.traffic.workload import Workload

GEOMETRIES = [
    ("16 nodes, 4x4 switches", 4, 2),
    ("64 nodes, 4x4 switches", 4, 3),
    ("64 nodes, 2x2 switches", 2, 6),
]

LOAD = 0.7


def _run_all(bench_cfg):
    out = []
    for geo_name, k, n in GEOMETRIES:
        nbits = (k.bit_length() - 1) * n
        cfg = replace(bench_cfg, measure_packets=800)

        def wb(load, k=k, n=n, nbits=nbits, cfg=cfg):
            return Workload(
                global_cluster(nbits=nbits),
                UniformPattern,
                load,
                cfg.sizes,
            )

        for kind in ("tmin", "dmin", "bmin"):
            net = NetworkConfig(kind, k=k, n=n)
            m = run_point(net, wb, LOAD, cfg)
            out.append((geo_name, kind.upper(), m))
    return out


def test_geometry_ablation(benchmark, results_dir, bench_cfg):
    rows = benchmark.pedantic(
        _run_all, args=(bench_cfg,), rounds=1, iterations=1
    )
    lines = [f"geometry ablation, global uniform @ load {LOAD:.0%}", ""]
    lines.append(f"{'geometry':<26} {'network':<8} {'thr %':>7} {'lat':>9}")
    for geo_name, kind, m in rows:
        lines.append(
            f"{geo_name:<26} {kind:<8} "
            f"{m.throughput_percent:7.2f} {m.avg_latency:9.1f}"
        )
    save_and_print(results_dir, "ablation_scale", "\n".join(lines))

    # The headline ordering (DMIN > TMIN) holds at every geometry.
    by_geo: dict[str, dict[str, float]] = {}
    for geo_name, kind, m in rows:
        by_geo.setdefault(geo_name, {})[kind] = m.throughput_percent
    for geo_name, t in by_geo.items():
        assert t["DMIN"] > t["TMIN"], f"{geo_name}: {t}"
