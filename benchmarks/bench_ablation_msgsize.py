"""Ablation: message-size sensitivity (the paper's future-work study).

Section 6 calls for "more simulation experiments ... to study the impact
due to long, short, and bimodal message sizes".  This bench runs the
four networks under global uniform traffic at one moderate load for
three size models and records how the DMIN's advantage and the
VMIN/BMIN ordering move with message length.
"""

from dataclasses import replace

from benchmarks.conftest import save_and_print
from repro.experiments.figures import FOUR_NETWORKS, uniform_workload
from repro.experiments.runner import run_point
from repro.traffic.clusters import global_cluster
from repro.traffic.workload import MessageSizeModel

SIZE_MODELS = {
    "short (fixed 16)": MessageSizeModel("fixed", low=16),
    "long (fixed 256)": MessageSizeModel("fixed", low=256),
    "bimodal (70% of 8-32, rest 33-512)": MessageSizeModel(
        "bimodal", 8, 512, short_fraction=0.7, split=32
    ),
}

LOAD = 0.6


def _run_all(bench_cfg):
    rows = []
    for size_name, sizes in SIZE_MODELS.items():
        cfg = replace(bench_cfg, sizes=sizes, measure_packets=800)
        wb = uniform_workload(global_cluster(), cfg)
        for net in FOUR_NETWORKS:
            m = run_point(net, wb, LOAD, cfg)
            rows.append((size_name, net.label, m))
    return rows


def test_message_size_ablation(benchmark, results_dir, bench_cfg):
    rows = benchmark.pedantic(
        _run_all, args=(bench_cfg,), rounds=1, iterations=1
    )
    lines = [f"message-size ablation, global uniform @ load {LOAD:.0%}", ""]
    lines.append(f"{'sizes':<36} {'network':<20} {'thr %':>7} {'lat':>9}")
    for size_name, label, m in rows:
        lines.append(
            f"{size_name:<36} {label:<20} "
            f"{m.throughput_percent:7.2f} {m.avg_latency:9.1f}"
        )
    save_and_print(results_dir, "ablation_msgsize", "\n".join(lines))

    # DMIN's advantage over TMIN must hold at every message size.
    by_size: dict[str, dict[str, float]] = {}
    for size_name, label, m in rows:
        by_size.setdefault(size_name, {})[label.split("(")[0]] = (
            m.throughput_percent
        )
    for size_name, t in by_size.items():
        assert t["DMIN"] > t["TMIN"], f"{size_name}: {t}"
