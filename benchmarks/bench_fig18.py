"""Regenerate Fig. 18: the four networks under uniform traffic.

Paper's claims: DMIN best, TMIN worst, VMIN slightly better than BMIN
(globally; under base-cube clustering our BMIN gains a genuine fat-tree
locality edge -- see EXPERIMENTS.md).
"""

from benchmarks.conftest import save_and_print
from repro.experiments.figures import fig18
from repro.experiments.report import render_figure, shape_checks


def test_fig18(benchmark, results_dir, bench_cfg):
    fig = benchmark.pedantic(fig18, args=(bench_cfg,), rounds=1, iterations=1)
    checks = shape_checks(fig)
    text = render_figure(fig) + "\n\nshape checks:\n" + "\n".join(
        f"  {c}" for c in checks
    )
    save_and_print(results_dir, "fig18", text)

    by_claim = {c.claim: c for c in checks}
    assert by_claim["global: DMIN best"].passed
    assert by_claim["global: TMIN worst"].passed
    assert by_claim["global: VMIN at least matches BMIN"].passed
    assert by_claim["cl16: DMIN best"].passed
    assert by_claim["cl16: TMIN worst"].passed
