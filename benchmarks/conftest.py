"""Shared configuration for the benchmark harness.

Each ``bench_figXX`` module regenerates one of the paper's evaluation
figures at the SCALED preset (short messages, the paper's geometry and
workloads), prints the series rows the figure would be plotted from,
writes them to ``benchmarks/results/``, and evaluates the paper's
qualitative shape claims.

Fidelity can be raised with ``REPRO_BENCH_MODE=full`` (the paper's
8-1024-flit messages; hours of CPU) or lowered with
``REPRO_BENCH_MODE=smoke``.
"""

import os
import pathlib
from dataclasses import replace

import pytest

from repro.experiments.config import PRESETS, SCALED

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_MODE = os.environ.get("REPRO_BENCH_MODE", "scaled")

if _MODE == "scaled":
    # Trim the load ladder so the whole harness stays in the minutes
    # range; the retained points still cover the knee of every curve.
    BENCH_CFG = replace(
        SCALED,
        loads=(0.1, 0.2, 0.4, 0.6, 0.8, 1.0),
        measure_packets=1200,
    )
else:
    BENCH_CFG = PRESETS[_MODE]


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def bench_cfg():
    return BENCH_CFG


def save_and_print(results_dir: pathlib.Path, name: str, text: str) -> None:
    (results_dir / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
