#!/usr/bin/env python3
"""Prove the transport hooks are free when no transport is attached.

The reliability PR touched the per-message source loop
(:meth:`repro.traffic.workload.Workload._source` gained arrival- and
transport-dispatch branches) and grew ``EngineStats`` by six counters.
A simulation that never attaches a :class:`ReliableTransport` must not
pay for the machinery: the branches are two ``is not None`` checks per
*message* (not per cycle or flit), and idle counters are just wider
dataclass rows.  This benchmark quantifies that cost against a
reconstructed pre-transport workload (the same source loop with the
dispatch deleted) and FAILS (exit 1) if the shipped transport-off path
is more than ``--threshold`` slower.

It also reports, for information only, the cost of actually running
the transport (acks, timers, windows) on the same traffic.

Run::

    PYTHONPATH=src python benchmarks/bench_transport.py           # full
    PYTHONPATH=src python benchmarks/bench_transport.py --smoke   # CI

Timing protocol mirrors ``bench_obs_overhead.py``: fresh-built engines
per round (identical seeds, identical RNG draws), warmup then a timed
chunk of cycles, variants interleaved round-robin, best-of-N compared.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

# Standalone-script bootstrap (mirrors tools/lint_sim.py): make
# `python benchmarks/bench_transport.py` work without PYTHONPATH.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # pragma: no cover
    sys.path.insert(0, str(_SRC))

from repro.sim import Environment  # noqa: E402
from repro.sim.rng import RandomStream  # noqa: E402
from repro.traffic.clusters import global_cluster  # noqa: E402
from repro.traffic.patterns import UniformPattern  # noqa: E402
from repro.traffic.workload import MessageSizeModel, Workload  # noqa: E402
from repro.transport import ReliableTransport, TransportConfig  # noqa: E402
from repro.wormhole import WormholeEngine, build_network  # noqa: E402


class PreTransportWorkload(Workload):
    """The seed workload's source loop, reconstructed: no dispatch.

    Overrides only ``_source`` -- the per-message generator body as it
    was before arrival processes and the transport existed.  Behaviour
    and RNG draws are identical to the stock transport-off workload.
    """

    def _source(  # pragma: no cover - benchmark only
        self, env, engine, node, pattern, mean_iat, stream
    ):
        governor = self.governor
        while True:
            iat = mean_iat
            if governor is not None:
                rate = governor.rate_of(node)
                if rate > 0:
                    iat = mean_iat / rate
            yield env.timeout(stream.exponential(iat))
            dest = pattern.pick(node, stream)
            if dest is None:
                continue
            length = self.sizes.draw(stream)
            while engine.offer(node, dest, length) is None:
                yield env.timeout(self.block_retry)


def _build(workload_cls, kind: str, load: float, with_transport: bool):
    env = Environment()
    engine = WormholeEngine(
        env,
        build_network(kind, k=4, n=3),
        rng=RandomStream(1),
        sanitize=False,
    )
    workload = workload_cls(
        global_cluster(),
        UniformPattern,
        offered_load=load,
        sizes=MessageSizeModel.scaled(),
    )
    if with_transport:
        workload.transport = ReliableTransport(
            engine, TransportConfig(), RandomStream(3, name="transport")
        )
    workload.install(env, engine, RandomStream(2))
    engine.start()
    return env, engine


def _timed_run(workload_cls, kind, load, warmup, cycles, with_transport):
    """Wall seconds for `cycles` loaded cycles (after `warmup`)."""
    env, engine = _build(workload_cls, kind, load, with_transport)
    env.run(until=warmup)
    t0 = time.perf_counter()  # lint-sim: ignore[RPV002] -- benchmark harness wall time
    env.run(until=warmup + cycles)
    wall = time.perf_counter() - t0  # lint-sim: ignore[RPV002] -- benchmark harness wall time
    if engine.stats.delivered_packets == 0:
        raise RuntimeError("benchmark run delivered nothing; config error")
    return wall


VARIANTS = (
    ("pre-transport baseline", PreTransportWorkload, False),
    ("transport-off (shipped)", Workload, False),
    ("transport attached", Workload, True),
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="quick CI mode")
    parser.add_argument("--rounds", type=int, default=None)
    parser.add_argument("--cycles", type=int, default=None)
    parser.add_argument("--warmup", type=int, default=500)
    parser.add_argument("--kind", default="dmin")
    parser.add_argument("--load", type=float, default=0.7)
    parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="max allowed (transport-off)/(pre-transport) wall ratio "
        "(default 1.05, smoke 1.15 for noisy CI runners)",
    )
    args = parser.parse_args(argv)
    rounds = args.rounds or (3 if args.smoke else 7)
    cycles = args.cycles or (1_000 if args.smoke else 4_000)
    threshold = args.threshold or (1.15 if args.smoke else 1.05)

    best = {name: float("inf") for name, _, _ in VARIANTS}
    for _ in range(rounds):  # interleave variants within each round
        for name, cls, with_tp in VARIANTS:
            wall = _timed_run(
                cls, args.kind, args.load, args.warmup, cycles, with_tp
            )
            best[name] = min(best[name], wall)

    base = best["pre-transport baseline"]
    print(
        f"transport-overhead benchmark: {args.kind} @ load {args.load:g}, "
        f"{cycles} cycles x best-of-{rounds}"
    )
    for name, _, _ in VARIANTS:
        wall = best[name]
        print(
            f"  {name:28} {wall * 1e3:8.1f} ms  "
            f"({cycles / wall:>9,.0f} cyc/s)  x{wall / base:.3f}"
        )
    ratio = best["transport-off (shipped)"] / base
    verdict = "PASS" if ratio <= threshold else "FAIL"
    print(
        f"[{verdict}] transport-off overhead x{ratio:.3f} "
        f"(threshold x{threshold:.2f})"
    )
    return 0 if ratio <= threshold else 1


if __name__ == "__main__":
    sys.exit(main())
