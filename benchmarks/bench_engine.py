"""Microbenchmarks of the wormhole engine itself.

Two harnesses share this module:

* classic pytest-benchmark timings (multiple rounds): simulation cycles
  per second for each network kind under a fixed uniform load, and the
  cost of network construction;
* a CLI perf gate (``python benchmarks/bench_engine.py``) that times
  the N=64 uniform-traffic load sweep under all three engine tiers
  (reference, fast, batch), records the schema-2 result in
  ``benchmarks/BENCH_engine.json``, and -- with ``--check`` -- fails
  when an absolute tier gate breaks (batch >= 10x reference on the
  sweep; batch >= 3x fast on the streaming point) or any recorded
  ratio regressed more than 20% against the committed baseline.  The
  gate compares *ratios*, not absolute seconds, so it is stable across
  machines of different speed (CI runners vs. laptops).

    PYTHONPATH=src python benchmarks/bench_engine.py          # rebaseline
    PYTHONPATH=src python benchmarks/bench_engine.py --check  # CI gate

Useful for tracking simulator performance across changes; neither
harness makes claims about the paper.
"""

import pathlib
import sys

import pytest

# Standalone-script bootstrap (mirrors bench_obs_overhead.py): make
# `python benchmarks/bench_engine.py` work without PYTHONPATH.
_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # pragma: no cover
    sys.path.insert(0, str(_SRC))

from repro.sim import Environment  # noqa: E402
from repro.sim.rng import RandomStream  # noqa: E402
from repro.traffic.clusters import global_cluster  # noqa: E402
from repro.traffic.patterns import UniformPattern  # noqa: E402
from repro.traffic.workload import MessageSizeModel, Workload  # noqa: E402
from repro.wormhole import WormholeEngine, build_network  # noqa: E402

KINDS = ["tmin", "dmin", "vmin", "bmin"]


def _loaded_engine(kind: str, load: float = 0.5):
    env = Environment()
    engine = WormholeEngine(
        env, build_network(kind, k=4, n=3), rng=RandomStream(1)
    )
    workload = Workload(
        global_cluster(),
        UniformPattern,
        offered_load=load,
        sizes=MessageSizeModel.scaled(),
    )
    workload.install(env, engine, RandomStream(2))
    engine.start()
    env.run(until=500)  # reach a loaded steady state before timing
    return env, engine


@pytest.mark.parametrize("kind", KINDS)
def test_cycles_per_second(benchmark, kind):
    """Wall-clock cost of 200 loaded simulation cycles."""
    env, engine = _loaded_engine(kind)

    def run_chunk():
        env.run(until=env.now + 200)

    benchmark(run_chunk)
    assert engine.stats.delivered_packets > 0


@pytest.mark.parametrize("kind", KINDS)
def test_network_construction(benchmark, kind):
    """Cost of building the 64-node network object."""
    net = benchmark(lambda: build_network(kind, k=4, n=3))
    assert net.channel_count > 0


def test_single_packet_end_to_end(benchmark):
    """Latency of simulating one uncontended 64-flit message."""

    def one_packet():
        env = Environment()
        engine = WormholeEngine(
            env, build_network("dmin", k=4, n=3), rng=RandomStream(3)
        )
        engine.offer(0, 63, 64)
        engine.drain()
        return engine

    engine = benchmark(one_packet)
    assert engine.stats.delivered_packets == 1


# ------------------------------------------------------------ CLI perf gate
#
# Schema 2 (three engine tiers).  Two scenarios, both the paper's N=64
# uniform-traffic DMIN geometry with paper-fidelity 1024-flit messages
# (the paper's longest; the figures fix the message length per curve):
#
# * ``sweep``     -- the offered-load ladder.  Gate: batch >= 10x
#                    reference.
# * ``streaming`` -- the load-0.1 point alone: long wormholes streaming
#                    through a quiet network, the regime the batch
#                    tier's span-sleep kernel targets.  Gate: batch
#                    >= 3x fast.
#
# ``--check`` re-times both scenarios and fails when either absolute
# gate breaks or any recorded ratio regressed more than ``--tolerance``
# against the committed baseline.  Gating ratios (not seconds) keeps
# the check stable across machines of different speed.

#: Absolute floors the ISSUE's acceptance criteria name.
GATE_SWEEP_BATCH_OVER_REFERENCE = 10.0
GATE_STREAMING_BATCH_OVER_FAST = 3.0

SWEEP_LOADS = (0.1, 0.2, 0.4, 0.6, 0.8, 1.0)
STREAMING_LOADS = (0.1,)
_MESSAGE_FLITS = 1024
_WARMUP_PACKETS = 60
_MEASURE_PACKETS = 300
_MAX_CYCLES = 600_000


def _bench_cfg():
    """The timing RunConfig: full-fidelity sizes, shortened windows."""
    from dataclasses import replace

    from repro.experiments.config import PRESETS

    return replace(
        PRESETS["full"],
        warmup_packets=_WARMUP_PACKETS,
        measure_packets=_MEASURE_PACKETS,
        max_cycles=_MAX_CYCLES,
        sizes=MessageSizeModel("fixed", _MESSAGE_FLITS, _MESSAGE_FLITS),
    )


def _sweep_seconds(
    engine_name: str, loads: tuple, repeats: int
) -> tuple[float, object]:
    """Best-of-``repeats`` wall-clock of the N=64 uniform DMIN sweep."""
    import time

    from repro.experiments.config import NetworkConfig
    from repro.experiments.runner import sweep
    from repro.experiments.workload_spec import WorkloadSpec

    cfg = _bench_cfg()
    network = NetworkConfig("dmin")  # N = 64 (k=4, n=3)
    builder = WorkloadSpec(pattern="uniform").builder(cfg)
    best = float("inf")
    result = None
    clock = time.perf_counter  # lint-sim: ignore[RPV002] -- harness wall time
    for _ in range(repeats):
        t0 = clock()
        result = sweep(
            network, builder, cfg, loads=loads, label="bench", engine=engine_name
        )
        best = min(best, clock() - t0)
    return best, result


def _time_scenario(loads: tuple, repeats: int) -> dict:
    """Time all three engines on one load set; assert they agree."""
    ref_s, ref = _sweep_seconds("reference", loads, repeats)
    fast_s, fast = _sweep_seconds("fast", loads, repeats)
    batch_s, batch = _sweep_seconds("batch", loads, repeats)
    assert fast.points == ref.points, (
        "fast and reference engines disagree -- run tests/differential"
    )
    assert batch.points == ref.points, (
        "batch and reference engines disagree -- run tests/differential"
    )
    return {
        "reference_seconds": round(ref_s, 3),
        "fast_seconds": round(fast_s, 3),
        "batch_seconds": round(batch_s, 3),
        "fast_over_reference": round(ref_s / fast_s, 3),
        "batch_over_reference": round(ref_s / batch_s, 3),
        "batch_over_fast": round(fast_s / batch_s, 3),
    }


def run_gate(repeats: int = 3) -> dict:
    """Time the three engine tiers on both scenarios; return the
    JSON-ready schema-2 record."""
    from repro.wormhole.batch import numpy_available

    if not numpy_available():  # pragma: no cover - CI installs numpy
        raise SystemExit(
            "the perf gate times the batch tier, which requires numpy "
            "(pip install repro[fast])"
        )
    return {
        "schema": 2,
        "scenario": {
            "network": "dmin",
            "nodes": 64,
            "pattern": "uniform",
            "message_flits": _MESSAGE_FLITS,
            "warmup_packets": _WARMUP_PACKETS,
            "measure_packets": _MEASURE_PACKETS,
            "sweep_loads": list(SWEEP_LOADS),
            "streaming_loads": list(STREAMING_LOADS),
            "repeats": repeats,
        },
        "gates": {
            "sweep_batch_over_reference_min": GATE_SWEEP_BATCH_OVER_REFERENCE,
            "streaming_batch_over_fast_min": GATE_STREAMING_BATCH_OVER_FAST,
        },
        "sweep": _time_scenario(SWEEP_LOADS, repeats),
        "streaming": _time_scenario(STREAMING_LOADS, repeats),
    }


def _check_absolute_gates(record: dict) -> list[str]:
    """The ISSUE's hard floors, evaluated on fresh timings."""
    failures = []
    got = record["sweep"]["batch_over_reference"]
    if got < GATE_SWEEP_BATCH_OVER_REFERENCE:
        failures.append(
            f"sweep: batch is {got:.2f}x reference, gate requires "
            f">= {GATE_SWEEP_BATCH_OVER_REFERENCE:.0f}x"
        )
    got = record["streaming"]["batch_over_fast"]
    if got < GATE_STREAMING_BATCH_OVER_FAST:
        failures.append(
            f"streaming: batch is {got:.2f}x fast, gate requires "
            f">= {GATE_STREAMING_BATCH_OVER_FAST:.0f}x"
        )
    return failures


def main(argv=None) -> int:
    import argparse
    import json
    import pathlib

    parser = argparse.ArgumentParser(
        description="engine perf gate: reference vs fast vs batch on the N=64 sweep"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed baseline instead of rewriting it",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats (best-of)"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed fractional ratio regression vs. baseline (default 0.20)",
    )
    args = parser.parse_args(argv)
    path = pathlib.Path(__file__).parent / "BENCH_engine.json"

    record = run_gate(repeats=args.repeats)
    for name in ("sweep", "streaming"):
        row = record[name]
        print(
            f"{name:9s}  reference {row['reference_seconds']:6.2f}s   "
            f"fast {row['fast_seconds']:6.2f}s   "
            f"batch {row['batch_seconds']:6.2f}s   "
            f"batch/ref {row['batch_over_reference']:6.2f}x   "
            f"batch/fast {row['batch_over_fast']:5.2f}x"
        )
    if not args.check:
        failures = _check_absolute_gates(record)
        for line in failures:
            print(f"FAIL: {line}")
        if failures:
            return 1
        path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")
        return 0

    baseline = json.loads(path.read_text())
    failures = _check_absolute_gates(record)
    if baseline.get("scenario") != record["scenario"]:
        print("NOTE: benchmark scenario changed; rebaseline before gating")
    else:
        for scenario, ratio in (
            ("sweep", "batch_over_reference"),
            ("sweep", "fast_over_reference"),
            ("streaming", "batch_over_fast"),
        ):
            base = baseline[scenario][ratio]
            floor = base * (1.0 - args.tolerance)
            got = record[scenario][ratio]
            print(
                f"{scenario}.{ratio}: {got:.2f}x vs baseline {base:.2f}x "
                f"(floor {floor:.2f}x)"
            )
            if got < floor:
                failures.append(
                    f"{scenario}: {ratio} {got:.2f}x fell below the "
                    f"{args.tolerance:.0%}-tolerance floor {floor:.2f}x -- "
                    "the engine regressed; investigate or rebaseline with "
                    "benchmarks/bench_engine.py"
                )
    for line in failures:
        print(f"FAIL: {line}")
    if failures:
        return 1
    print("ok: engine tiers hold their speedups")
    return 0


if __name__ == "__main__":
    sys.exit(main())
