"""Microbenchmarks of the wormhole engine itself.

These are classic pytest-benchmark timings (multiple rounds): simulation
cycles per second for each network kind under a fixed uniform load, and
the cost of network construction.  Useful for tracking simulator
performance across changes; they make no claims about the paper.
"""

import pytest

from repro.sim import Environment
from repro.sim.rng import RandomStream
from repro.traffic.clusters import global_cluster
from repro.traffic.patterns import UniformPattern
from repro.traffic.workload import MessageSizeModel, Workload
from repro.wormhole import WormholeEngine, build_network

KINDS = ["tmin", "dmin", "vmin", "bmin"]


def _loaded_engine(kind: str, load: float = 0.5):
    env = Environment()
    engine = WormholeEngine(
        env, build_network(kind, k=4, n=3), rng=RandomStream(1)
    )
    workload = Workload(
        global_cluster(),
        UniformPattern,
        offered_load=load,
        sizes=MessageSizeModel.scaled(),
    )
    workload.install(env, engine, RandomStream(2))
    engine.start()
    env.run(until=500)  # reach a loaded steady state before timing
    return env, engine


@pytest.mark.parametrize("kind", KINDS)
def test_cycles_per_second(benchmark, kind):
    """Wall-clock cost of 200 loaded simulation cycles."""
    env, engine = _loaded_engine(kind)

    def run_chunk():
        env.run(until=env.now + 200)

    benchmark(run_chunk)
    assert engine.stats.delivered_packets > 0


@pytest.mark.parametrize("kind", KINDS)
def test_network_construction(benchmark, kind):
    """Cost of building the 64-node network object."""
    net = benchmark(lambda: build_network(kind, k=4, n=3))
    assert net.channel_count > 0


def test_single_packet_end_to_end(benchmark):
    """Latency of simulating one uncontended 64-flit message."""

    def one_packet():
        env = Environment()
        engine = WormholeEngine(
            env, build_network("dmin", k=4, n=3), rng=RandomStream(3)
        )
        engine.offer(0, 63, 64)
        engine.drain()
        return engine

    engine = benchmark(one_packet)
    assert engine.stats.delivered_packets == 1
