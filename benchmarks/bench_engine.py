"""Microbenchmarks of the wormhole engine itself.

Two harnesses share this module:

* classic pytest-benchmark timings (multiple rounds): simulation cycles
  per second for each network kind under a fixed uniform load, and the
  cost of network construction;
* a CLI perf gate (``python benchmarks/bench_engine.py``) that times
  the N=64 uniform-traffic load sweep under both the reference and the
  fast engine, records the result in ``benchmarks/BENCH_engine.json``,
  and -- with ``--check`` -- fails when the fast-over-reference speedup
  regressed more than 20% against the committed baseline.  The gate
  compares the *ratio*, not absolute seconds, so it is stable across
  machines of different speed (CI runners vs. laptops).

    PYTHONPATH=src python benchmarks/bench_engine.py          # rebaseline
    PYTHONPATH=src python benchmarks/bench_engine.py --check  # CI gate

Useful for tracking simulator performance across changes; neither
harness makes claims about the paper.
"""

import pathlib
import sys

import pytest

# Standalone-script bootstrap (mirrors bench_obs_overhead.py): make
# `python benchmarks/bench_engine.py` work without PYTHONPATH.
_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # pragma: no cover
    sys.path.insert(0, str(_SRC))

from repro.sim import Environment  # noqa: E402
from repro.sim.rng import RandomStream  # noqa: E402
from repro.traffic.clusters import global_cluster  # noqa: E402
from repro.traffic.patterns import UniformPattern  # noqa: E402
from repro.traffic.workload import MessageSizeModel, Workload  # noqa: E402
from repro.wormhole import WormholeEngine, build_network  # noqa: E402

KINDS = ["tmin", "dmin", "vmin", "bmin"]


def _loaded_engine(kind: str, load: float = 0.5):
    env = Environment()
    engine = WormholeEngine(
        env, build_network(kind, k=4, n=3), rng=RandomStream(1)
    )
    workload = Workload(
        global_cluster(),
        UniformPattern,
        offered_load=load,
        sizes=MessageSizeModel.scaled(),
    )
    workload.install(env, engine, RandomStream(2))
    engine.start()
    env.run(until=500)  # reach a loaded steady state before timing
    return env, engine


@pytest.mark.parametrize("kind", KINDS)
def test_cycles_per_second(benchmark, kind):
    """Wall-clock cost of 200 loaded simulation cycles."""
    env, engine = _loaded_engine(kind)

    def run_chunk():
        env.run(until=env.now + 200)

    benchmark(run_chunk)
    assert engine.stats.delivered_packets > 0


@pytest.mark.parametrize("kind", KINDS)
def test_network_construction(benchmark, kind):
    """Cost of building the 64-node network object."""
    net = benchmark(lambda: build_network(kind, k=4, n=3))
    assert net.channel_count > 0


def test_single_packet_end_to_end(benchmark):
    """Latency of simulating one uncontended 64-flit message."""

    def one_packet():
        env = Environment()
        engine = WormholeEngine(
            env, build_network("dmin", k=4, n=3), rng=RandomStream(3)
        )
        engine.offer(0, 63, 64)
        engine.drain()
        return engine

    engine = benchmark(one_packet)
    assert engine.stats.delivered_packets == 1


# ------------------------------------------------------------ CLI perf gate


def _sweep_seconds(engine_name: str, repeats: int) -> tuple[float, object]:
    """Best-of-``repeats`` wall-clock of the N=64 uniform DMIN sweep."""
    import time

    from repro.experiments.config import PRESETS, NetworkConfig
    from repro.experiments.runner import sweep
    from repro.experiments.workload_spec import WorkloadSpec

    cfg = PRESETS["scaled"]
    network = NetworkConfig("dmin")  # N = 64 (k=4, n=3)
    builder = WorkloadSpec(pattern="uniform").builder(cfg)
    best = float("inf")
    result = None
    clock = time.perf_counter  # lint-sim: ignore[RPV002] -- harness wall time
    for _ in range(repeats):
        t0 = clock()
        result = sweep(network, builder, cfg, label="bench", engine=engine_name)
        best = min(best, clock() - t0)
    return best, result


def run_gate(repeats: int = 2) -> dict:
    """Time reference vs. fast on the acceptance scenario; return the
    JSON-ready record (and assert the two engines still agree)."""
    from repro.experiments.config import PRESETS

    ref_s, ref = _sweep_seconds("reference", repeats)
    fast_s, fast = _sweep_seconds("fast", repeats)
    assert fast.points == ref.points, (
        "fast and reference engines disagree -- run tests/differential"
    )
    return {
        "schema": 1,
        "scenario": {
            "network": "dmin",
            "nodes": 64,
            "pattern": "uniform",
            "preset": "scaled",
            "loads": list(PRESETS["scaled"].loads),
            "repeats": repeats,
        },
        "reference_seconds": round(ref_s, 3),
        "fast_seconds": round(fast_s, 3),
        "speedup": round(ref_s / fast_s, 3),
    }


def main(argv=None) -> int:
    import argparse
    import json
    import pathlib

    parser = argparse.ArgumentParser(
        description="engine perf gate: fast vs reference on the N=64 sweep"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed baseline instead of rewriting it",
    )
    parser.add_argument(
        "--repeats", type=int, default=2, help="timing repeats (best-of)"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed fractional speedup regression vs. baseline (default 0.20)",
    )
    args = parser.parse_args(argv)
    path = pathlib.Path(__file__).parent / "BENCH_engine.json"

    record = run_gate(repeats=args.repeats)
    print(
        f"reference {record['reference_seconds']:.2f}s   "
        f"fast {record['fast_seconds']:.2f}s   "
        f"speedup {record['speedup']:.2f}x"
    )
    if not args.check:
        path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")
        return 0

    baseline = json.loads(path.read_text())
    floor = baseline["speedup"] * (1.0 - args.tolerance)
    print(
        f"baseline speedup {baseline['speedup']:.2f}x  "
        f"(floor after {args.tolerance:.0%} tolerance: {floor:.2f}x)"
    )
    if record["scenario"] != baseline["scenario"]:
        print("NOTE: benchmark scenario changed; rebaseline before gating")
    if record["speedup"] < floor:
        print(
            f"FAIL: fast-path speedup {record['speedup']:.2f}x fell below "
            f"{floor:.2f}x -- the fast path regressed; investigate or "
            "rebaseline with benchmarks/bench_engine.py"
        )
        return 1
    print("ok: fast path holds its speedup")
    return 0


if __name__ == "__main__":
    sys.exit(main())
