"""Extension bench: switching techniques (Section 1's motivation).

Compares store-and-forward, circuit switching and wormhole switching on
the same 64-node cube MIN across message lengths, reproducing the
latency-structure argument that made wormhole the technique of choice:
SAF multiplies hops by message length; circuit and wormhole pay hops
once.
"""

from benchmarks.conftest import save_and_print
from repro.sim import Environment
from repro.sim.rng import RandomStream
from repro.switching.engines import CircuitSwitchedNetwork, StoreForwardNetwork
from repro.topology.mins import cube_min
from repro.wormhole import WormholeEngine, build_network

LENGTHS = (8, 64, 512)
PAIR = (0, 63)  # maximal-distance pair of the 64-node system


def _one_message_latencies(length: int) -> dict[str, float]:
    out = {}
    env = Environment()
    saf = StoreForwardNetwork(env, cube_min(4, 3))
    r = saf.send(*PAIR, length)
    env.run()
    out["store-and-forward"] = r.latency

    env = Environment()
    cir = CircuitSwitchedNetwork(env, cube_min(4, 3))
    r = cir.send(*PAIR, length)
    env.run()
    out["circuit"] = r.latency

    env = Environment()
    eng = WormholeEngine(env, build_network("tmin", 4, 3), rng=RandomStream(0))
    p = eng.offer(*PAIR, length)
    eng.drain()
    out["wormhole"] = p.network_latency
    return out


def _run_all():
    return {length: _one_message_latencies(length) for length in LENGTHS}


def test_switching_comparison(benchmark, results_dir):
    data = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    lines = [
        "switching techniques, uncontended 0->63 on the 64-node cube MIN",
        "",
        f"{'flits':>6} | {'SAF':>8} | {'circuit':>8} | {'wormhole':>8} | SAF/wormhole",
    ]
    for length, lat in data.items():
        lines.append(
            f"{length:>6} | {lat['store-and-forward']:>8.0f} | "
            f"{lat['circuit']:>8.0f} | {lat['wormhole']:>8.0f} | "
            f"{lat['store-and-forward'] / lat['wormhole']:6.2f}x"
        )
    save_and_print(results_dir, "switching", "\n".join(lines))

    for length, lat in data.items():
        hops = 4
        assert lat["store-and-forward"] == hops * (length + 1)
        assert lat["circuit"] == hops + length
        assert lat["wormhole"] == hops + length - 2
    # The SAF penalty approaches the hop count for long messages.
    long = data[512]
    assert long["store-and-forward"] / long["wormhole"] > 3.5
