"""Ablation: the cluster-32 workload (mentioned, not plotted, in §5).

The paper states that "a similar relative performance difference was
also observed for the cluster-32 uniform workload" (two 32-node
binary-cube halves, Theorem 2's relaxation).  This bench runs all four
networks under cluster-32 uniform traffic and checks the Fig. 18
ordering transfers: DMIN best, TMIN worst.
"""

from dataclasses import replace

from benchmarks.conftest import save_and_print
from repro.experiments.figures import FOUR_NETWORKS, uniform_workload
from repro.experiments.runner import sweep
from repro.traffic.clusters import cluster_32

LOADS = (0.2, 0.4, 0.6, 0.8, 1.0)


def _run_all(bench_cfg):
    cfg = replace(bench_cfg, loads=LOADS, measure_packets=1000)
    wb = uniform_workload(cluster_32(), cfg)
    return [sweep(net, wb, cfg, label=net.label) for net in FOUR_NETWORKS]


def test_cluster32_ordering(benchmark, results_dir, bench_cfg):
    sweeps = benchmark.pedantic(
        _run_all, args=(bench_cfg,), rounds=1, iterations=1
    )
    lines = ["cluster-32 uniform workload (two 32-node halves)", ""]
    lines.append(f"{'network':<22} " + " ".join(f"{ld:>7.2f}" for ld in LOADS))
    thr = {}
    for s in sweeps:
        vals = [p.measurement.throughput_percent for p in s.points]
        lines.append(f"{s.label:<22} " + " ".join(f"{v:7.2f}" for v in vals))
        thr[s.label.split("(")[0]] = s.max_sustained_throughput()
    lines.append("")
    lines.append(
        "max sustained: "
        + "  ".join(f"{k}={v:.1f}%" for k, v in thr.items())
    )
    save_and_print(results_dir, "ablation_cluster32", "\n".join(lines))

    # The paper: "a similar relative performance difference was also
    # observed for the cluster-32 uniform workload".
    assert thr["DMIN"] == max(thr.values())
    assert thr["TMIN"] == min(thr.values())
