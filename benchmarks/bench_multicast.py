"""Extension bench: software multicast on the BMIN (paper ref [32]).

Measures broadcast completion time for the naive sequential plan vs.
the binomial block plan across group sizes, on the paper's 64-node
BMIN.  The binomial plan needs ``ceil(log2(m+1))`` phases and its
phases are conflict-free on the fat tree, so it wins by ~m/log2(m).
"""

from benchmarks.conftest import save_and_print
from repro.multicast.runner import run_multicast
from repro.multicast.schedule import binomial_schedule, sequential_schedule
from repro.wormhole import build_network

GROUP_SIZES = (3, 7, 15, 31, 63)
MESSAGE = 64


def _run_all():
    rows = []
    for m in GROUP_SIZES:
        dests = list(range(1, m + 1))
        seq = run_multicast(
            build_network("bmin", 4, 3),
            0,
            dests,
            sequential_schedule(0, dests),
            message_length=MESSAGE,
        )
        bino = run_multicast(
            build_network("bmin", 4, 3),
            0,
            dests,
            binomial_schedule(0, dests),
            message_length=MESSAGE,
        )
        rows.append((m, seq, bino))
    return rows


def test_multicast_broadcast(benchmark, results_dir):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    lines = [f"software multicast on the 64-node BMIN, {MESSAGE}-flit messages", ""]
    lines.append(
        f"{'group':>6} | {'seq phases':>10} {'cycles':>8} | "
        f"{'bin phases':>10} {'cycles':>8} | speedup"
    )
    for m, seq, bino in rows:
        lines.append(
            f"{m:>6} | {seq.phases:>10} {seq.total_cycles:>8.0f} | "
            f"{bino.phases:>10} {bino.total_cycles:>8.0f} | "
            f"{seq.total_cycles / bino.total_cycles:5.2f}x"
        )
    save_and_print(results_dir, "multicast", "\n".join(lines))

    for m, seq, bino in rows:
        assert bino.total_cycles <= seq.total_cycles
        if m >= 15:
            assert seq.total_cycles / bino.total_cycles > 2.0
