"""Perf gate of the sweep service's content-addressed cache.

Times one job served **cold** (every point computed by the supervised
worker pool) against the identical job re-submitted **warm** (every
point answered from the content-addressed cache), and gates on the
ratio: the issue's acceptance bar is a >= 10x warm speedup.  The ratio,
not absolute seconds, is compared, so the gate is stable across
machines of different speed.

    PYTHONPATH=src python benchmarks/bench_serve.py           # rebaseline
    PYTHONPATH=src python benchmarks/bench_serve.py --check   # CI gate
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke   # tiny grid

The warm run must also be *correct*: the gate asserts it served every
unique point from cache and computed nothing.
"""

import pathlib
import sys

# Standalone-script bootstrap (mirrors bench_engine.py): make
# `python benchmarks/bench_serve.py` work without PYTHONPATH.
_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # pragma: no cover
    sys.path.insert(0, str(_SRC))

HARD_FLOOR = 10.0  # the acceptance bar: warm must be >= 10x faster


def _spec(smoke: bool):
    from repro.experiments.config import PRESETS, NetworkConfig
    from repro.experiments.workload_spec import WorkloadSpec
    from repro.serve.job import JobSpec

    if smoke:
        networks = (NetworkConfig("dmin", k=2, n=3),)
        loads, seeds = (0.2, 0.4), (1,)
    else:
        networks = (NetworkConfig("dmin"), NetworkConfig("tmin"))
        loads, seeds = (0.2, 0.4, 0.6), (1, 2)
    return JobSpec(
        networks=networks,
        run=PRESETS["smoke"],
        workload=WorkloadSpec(),
        loads=loads,
        seeds=seeds,
    )


def run_gate(smoke: bool = False, workers: int = 2) -> dict:
    import tempfile
    import time

    from repro.serve.service import SweepService
    from repro.serve.supervisor import SupervisePolicy

    spec = _spec(smoke)
    clock = time.perf_counter  # lint-sim: ignore[RPV002] -- harness wall time
    with tempfile.TemporaryDirectory(prefix="bench_serve_") as tmp:
        service = SweepService(
            cache=pathlib.Path(tmp) / "cache",
            policy=SupervisePolicy(workers=workers),
        )
        t0 = clock()
        cold = service.run_job_sync(spec)
        cold_s = clock() - t0
        assert cold.complete, f"cold run incomplete: {cold.incomplete}"
        assert cold.counts["computed"] == cold.counts["unique"]

        t0 = clock()
        warm = service.run_job_sync(spec)
        warm_s = clock() - t0
        assert warm.complete
        assert warm.counts["cached"] == warm.counts["unique"], (
            f"warm run missed the cache: {warm.counts}"
        )
        assert warm.counts["computed"] == 0

    return {
        "schema": 1,
        "scenario": {
            "networks": [n.label for n in spec.networks],
            "preset": "smoke",
            "loads": list(spec.effective_loads),
            "seeds": list(spec.effective_seeds),
            "unique_points": cold.counts["unique"],
            "workers": workers,
            "smoke": smoke,
        },
        "cold_seconds": round(cold_s, 3),
        "warm_seconds": round(warm_s, 4),
        "speedup": round(cold_s / warm_s, 1),
    }


def main(argv=None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(
        description="sweep-service perf gate: cold compute vs warm cache"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="gate against the committed baseline instead of rewriting it",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny 8-node grid (CI); never rewrites the baseline",
    )
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args(argv)
    path = pathlib.Path(__file__).parent / "BENCH_serve.json"

    record = run_gate(smoke=args.smoke, workers=args.workers)
    print(
        f"cold {record['cold_seconds']:.2f}s   "
        f"warm {record['warm_seconds']*1000:.1f}ms   "
        f"speedup {record['speedup']:.0f}x "
        f"({record['scenario']['unique_points']} unique points)"
    )
    if record["speedup"] < HARD_FLOOR:
        print(
            f"FAIL: warm speedup {record['speedup']:.1f}x is below the "
            f"{HARD_FLOOR:.0f}x acceptance floor -- the cache path regressed"
        )
        return 1

    if args.smoke:
        print(f"ok: cache holds >= {HARD_FLOOR:.0f}x on the smoke grid")
        return 0
    if not args.check:
        path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")
        return 0

    baseline = json.loads(path.read_text())
    if record["scenario"] != baseline["scenario"]:
        print("NOTE: benchmark scenario changed; rebaseline before gating")
    print(
        f"baseline speedup {baseline['speedup']:.0f}x; "
        f"hard floor {HARD_FLOOR:.0f}x"
    )
    print("ok: cache holds its speedup")
    return 0


if __name__ == "__main__":
    sys.exit(main())
