"""Regenerate Fig. 20: shuffle and 2nd-butterfly permutation traffic.

Paper's claims: TMIN and VMIN collapse (static 4-way channel sharing
caps them at 25%); DMIN and BMIN route around the conflicts; BMIN
matches DMIN under heavy load.
"""

from benchmarks.conftest import save_and_print
from repro.experiments.figures import fig20
from repro.experiments.report import render_figure, shape_checks


def test_fig20(benchmark, results_dir, bench_cfg):
    fig = benchmark.pedantic(fig20, args=(bench_cfg,), rounds=1, iterations=1)
    checks = shape_checks(fig)
    text = render_figure(fig) + "\n\nshape checks:\n" + "\n".join(
        f"  {c}" for c in checks
    )
    save_and_print(results_dir, "fig20", text)

    by_claim = {c.claim: c for c in checks}
    for tag in ("shuffle", "beta2"):
        assert by_claim[f"{tag}: DMIN and BMIN beat TMIN and VMIN"].passed
        assert by_claim[f"{tag}: VMIN no better than TMIN"].passed
        assert by_claim[f"{tag}: BMIN close to DMIN under heavy load"].passed

    # The static cap is sharp: TMIN and VMIN sit at ~25% of capacity.
    for label in ("TMIN / shuffle", "VMIN / shuffle"):
        assert fig.by_label(label).max_sustained_throughput() <= 26.0
