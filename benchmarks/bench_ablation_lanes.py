"""Ablation: more virtual channels / higher dilation / BMIN with VCs.

Section 6's future-work list: "VMINs with more than two virtual
channels" and "BMINs with virtual channels".  This bench sweeps the lane
multiplicity at a heavy uniform load and under the shuffle permutation,
where extra lanes should matter most.
"""

from dataclasses import replace

from benchmarks.conftest import save_and_print
from repro.experiments.config import NetworkConfig
from repro.experiments.figures import shuffle_workload, uniform_workload
from repro.experiments.runner import run_point
from repro.traffic.clusters import global_cluster

VARIANTS = [
    NetworkConfig("tmin"),
    NetworkConfig("vmin", virtual_channels=2),
    NetworkConfig("vmin", virtual_channels=4),
    NetworkConfig("dmin", dilation=2),
    NetworkConfig("dmin", dilation=4),
    NetworkConfig("bmin"),
    NetworkConfig("bmin", bmin_virtual_channels=2),
]

LOAD = 0.8


def _run_all(bench_cfg):
    cfg = replace(bench_cfg, measure_packets=800)
    out = []
    for wb_name, wb in (
        ("uniform", uniform_workload(global_cluster(), cfg)),
        ("shuffle", shuffle_workload(cfg)),
    ):
        for net in VARIANTS:
            label = net.label + (
                f"+vc{net.bmin_virtual_channels}"
                if net.kind == "bmin" and net.bmin_virtual_channels > 1
                else ""
            )
            m = run_point(net, wb, LOAD, cfg)
            out.append((wb_name, label, m))
    return out


def test_lane_multiplicity_ablation(benchmark, results_dir, bench_cfg):
    rows = benchmark.pedantic(
        _run_all, args=(bench_cfg,), rounds=1, iterations=1
    )
    lines = [f"lane-multiplicity ablation @ load {LOAD:.0%}", ""]
    lines.append(f"{'workload':<10} {'network':<26} {'thr %':>7} {'lat':>9}")
    for wb_name, label, m in rows:
        lines.append(
            f"{wb_name:<10} {label:<26} "
            f"{m.throughput_percent:7.2f} {m.avg_latency:9.1f}"
        )
    save_and_print(results_dir, "ablation_lanes", "\n".join(lines))

    uni = {lb: m.throughput_percent for w, lb, m in rows if w == "uniform"}
    shf = {lb: m.throughput_percent for w, lb, m in rows if w == "shuffle"}

    # More lanes never hurt under uniform traffic.
    assert uni["DMIN(d=4, cube)"] >= uni["DMIN(d=2, cube)"] - 2.0
    assert uni["VMIN(v=4, cube)"] >= uni["VMIN(v=2, cube)"] - 2.0
    # Under shuffle, virtual channels add NO bandwidth: four VCs still
    # share one wire, so the static 25% cap stands regardless of v.
    assert abs(shf["VMIN(v=4, cube)"] - shf["VMIN(v=2, cube)"]) < 3.0
    assert shf["VMIN(v=4, cube)"] <= 26.0
    # Dilation adds wires: d=4 absorbs the 4-way conflicts entirely.
    assert shf["DMIN(d=4, cube)"] > shf["DMIN(d=2, cube)"] + 5.0
    # Extra VCs on the BMIN reduce head-of-line blocking on the shared
    # backward channels (the paper's future-work variant pays off).
    assert shf["BMIN+vc2"] >= shf["BMIN"] - 1.0
