"""Regenerate Fig. 16: cube vs. butterfly TMIN, global and cluster-16.

Paper's claims: (a) under global uniform traffic the two topologies are
indistinguishable; (b) under cluster-16 uniform traffic the cube's
channel-balanced clustering wins and the butterfly's channel-reduced
clustering is worst.
"""

from benchmarks.conftest import save_and_print
from repro.experiments.figures import fig16
from repro.experiments.report import render_figure, shape_checks


def test_fig16(benchmark, results_dir, bench_cfg):
    fig = benchmark.pedantic(fig16, args=(bench_cfg,), rounds=1, iterations=1)
    checks = shape_checks(fig)
    text = render_figure(fig) + "\n\nshape checks:\n" + "\n".join(
        f"  {c}" for c in checks
    )
    save_and_print(results_dir, "fig16", text)

    by_claim = {c.claim: c for c in checks}
    assert by_claim["global uniform: cube == butterfly"].passed
    assert by_claim[
        "cluster-16: cube balanced beats butterfly clusterings"
    ].passed
    assert by_claim["cluster-16: channel-reduced is worst"].passed
