#!/usr/bin/env python3
"""Prove the telemetry bus is (nearly) free when nobody is listening.

The event bus (:mod:`repro.obs.bus`) added publish sites to the
engine's per-cycle hot loop.  Each site is guarded -- the ``hot`` flag
is hoisted once per phase into a local, so a cycle with no sinks
attached pays two flag reads and per-event ``is not None`` checks,
nothing more.  This benchmark quantifies that cost against a
reconstructed pre-bus engine (the same two phase bodies with every
publish site deleted) and FAILS (exit 1) if the detached-bus engine is
more than ``--threshold`` slower.

It also reports, for information only, the cost of actually listening:
a :class:`~repro.obs.contention.ContentionSink` alone, and a full
:class:`~repro.obs.session.ObsSession` with Perfetto tracing.

Run::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py           # full
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --smoke   # CI

Timing protocol: each variant runs fresh-built engines (identical
seeds, identical RNG draws -- publishes consume no randomness) through
a warmup then a timed chunk of cycles; variants are interleaved
round-robin to neutralize thermal/frequency drift and the best (min)
round is compared, which is the standard way to measure a code path's
floor cost.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

# Standalone-script bootstrap (mirrors tools/lint_sim.py): make
# `python benchmarks/bench_obs_overhead.py` work without PYTHONPATH.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # pragma: no cover
    sys.path.insert(0, str(_SRC))

from repro.obs.session import ObsSession  # noqa: E402
from repro.sim import Environment  # noqa: E402
from repro.sim.rng import RandomStream  # noqa: E402
from repro.traffic.clusters import global_cluster  # noqa: E402
from repro.traffic.patterns import UniformPattern  # noqa: E402
from repro.traffic.workload import MessageSizeModel, Workload  # noqa: E402
from repro.wormhole import WormholeEngine, build_network  # noqa: E402
from repro.wormhole.packet import PacketState  # noqa: E402


class PreBusEngine(WormholeEngine):
    """The seed engine's hot loop, reconstructed: no publish sites.

    Overrides only the two per-cycle phases (the cold paths -- offer,
    finalize, abort -- keep their ``bus.enabled`` guards, which run
    once per *packet*, not per cycle/flit, and are timing noise).
    Behaviour and RNG draws are identical to the stock engine.
    """

    def _phase_allocate(self) -> None:  # pragma: no cover - benchmark only
        if self._backlogged:
            drained = []
            for node in sorted(self._backlogged):
                inj = self.network.injection_channel(node)
                if inj.faulty:
                    while self.queues[node]:
                        p = self.queues[node].popleft()
                        p.state = PacketState.FAILED
                        self.stats.failed_packets += 1
                        for hook in self.on_packet_failed:
                            hook(p)
                    drained.append(node)
                    continue
                lane = inj.lanes[0]
                if lane.owner is not None:
                    continue
                p = self.queues[node].popleft()
                p.state = PacketState.ACTIVE
                p.inject_start = self.env.now
                self.network.prepare(p)
                lane.acquire(p)
                self._active_packets += 1
                self._progressed = True
                if not self.queues[node]:
                    drained.append(node)
            for node in drained:
                self._backlogged.discard(node)

        if not self._pending_route:
            return
        self.rng.shuffle(self._pending_route)
        still_pending = []
        for p in self._pending_route:
            if p.state is not PacketState.ACTIVE or not p.needs_route:
                continue
            candidates = self.network.candidates(p)
            usable = [ch for ch in candidates if not ch.faulty]
            if not usable:
                self._abort(p)
                continue
            free = [lane for ch in usable for lane in ch.lanes if lane.owner is None]
            if not free:
                still_pending.append(p)
                continue
            if len(free) == 1:
                lane = free[0]
            else:
                lane = self.network.preferred_lane(p, free, self.rng)
                if lane is None:
                    lane = self.rng.choice(free)
            lane.acquire(p)
            self.network.advance(p, lane.channel)
            p.needs_route = False
            self._progressed = True
        self._pending_route = still_pending

    def _phase_advance(self) -> None:  # pragma: no cover - benchmark only
        pending = self._pending_route
        for ch in self.network.topo_channels:
            if ch.owned_count == 0:
                continue
            lane = ch.transmit()
            if lane is None:
                continue
            self._progressed = True
            p = lane.owner
            assert p is not None
            if ch.is_delivery:
                if lane.sent == p.length:
                    lane.release()
                    self._finalize(p)
            else:
                if lane.sent == 1 and lane.route_idx == len(p.lanes) - 1:
                    p.needs_route = True
                    pending.append(p)
                if lane.sent == p.length:
                    lane.release()


def _build(engine_cls, kind: str, load: float):
    env = Environment()
    # fast=False throughout: PreBusEngine reconstructs the *reference*
    # phase bodies, so the bus-overhead comparison must run every
    # variant on the reference path (the fast path's publish sites use
    # the same hoisted-flag guard; see benchmarks/bench_engine.py for
    # the fast-vs-reference comparison).
    engine = engine_cls(
        env,
        build_network(kind, k=4, n=3),
        rng=RandomStream(1),
        sanitize=False,
        fast=False,
    )
    workload = Workload(
        global_cluster(),
        UniformPattern,
        offered_load=load,
        sizes=MessageSizeModel.scaled(),
    )
    workload.install(env, engine, RandomStream(2))
    engine.start()
    return env, engine


def _timed_run(engine_cls, kind, load, warmup, cycles, attach=None):
    """Wall seconds for `cycles` loaded cycles (after `warmup`)."""
    env, engine = _build(engine_cls, kind, load)
    env.run(until=warmup)
    session = attach(engine) if attach is not None else None
    t0 = time.perf_counter()  # lint-sim: ignore[RPV002] -- benchmark harness wall time
    env.run(until=warmup + cycles)
    wall = time.perf_counter() - t0  # lint-sim: ignore[RPV002] -- benchmark harness wall time
    if session is not None:
        session.close()
    if engine.stats.delivered_packets == 0:
        raise RuntimeError("benchmark run delivered nothing; config error")
    return wall


VARIANTS = (
    ("pre-bus baseline", PreBusEngine, None),
    ("bus, no sinks", WormholeEngine, None),
    ("bus + contention sink", WormholeEngine, lambda e: ObsSession(e)),
    ("bus + full session (trace)", WormholeEngine, lambda e: ObsSession(e, trace=True)),
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="quick CI mode")
    parser.add_argument("--rounds", type=int, default=None)
    parser.add_argument("--cycles", type=int, default=None)
    parser.add_argument("--warmup", type=int, default=500)
    parser.add_argument("--kind", default="dmin")
    parser.add_argument("--load", type=float, default=0.7)
    parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="max allowed (detached bus)/(pre-bus) wall ratio "
        "(default 1.05, smoke 1.15 for noisy CI runners)",
    )
    args = parser.parse_args(argv)
    rounds = args.rounds or (3 if args.smoke else 7)
    cycles = args.cycles or (1_000 if args.smoke else 4_000)
    threshold = args.threshold or (1.15 if args.smoke else 1.05)

    best = {name: float("inf") for name, _, _ in VARIANTS}
    for _ in range(rounds):  # interleave variants within each round
        for name, cls, attach in VARIANTS:
            wall = _timed_run(cls, args.kind, args.load, args.warmup, cycles, attach)
            best[name] = min(best[name], wall)

    base = best["pre-bus baseline"]
    print(
        f"obs-overhead benchmark: {args.kind} @ load {args.load:g}, "
        f"{cycles} cycles x best-of-{rounds}"
    )
    for name, _, _ in VARIANTS:
        wall = best[name]
        print(
            f"  {name:28} {wall * 1e3:8.1f} ms  "
            f"({cycles / wall:>9,.0f} cyc/s)  x{wall / base:.3f}"
        )
    ratio = best["bus, no sinks"] / base
    verdict = "PASS" if ratio <= threshold else "FAIL"
    print(
        f"[{verdict}] detached-bus overhead x{ratio:.3f} "
        f"(threshold x{threshold:.2f})"
    )
    return 0 if ratio <= threshold else 1


if __name__ == "__main__":
    sys.exit(main())
