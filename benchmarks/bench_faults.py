"""Availability benchmark: degradation vs. channel fault rate.

Beyond the paper's figures: quantifies its Section 2 fault-tolerance
argument.  The four networks run uniform traffic at a mid-range load
while an MTBF/MTTR churn process takes fabric channels down (hard
faults: worms on a failing wire are aborted) and source-side retry
with exponential backoff re-injects the casualties.

Claims checked: the TMIN's unique paths make it kill far more worms
than the DMIN at the same fault rate, and the multi-path fabrics keep
their eventual delivery ratio at least as high as the TMIN's.
"""

from benchmarks.conftest import save_and_print
from repro.experiments.availability import (
    availability_checks,
    availability_comparison,
    render_availability,
)


def test_availability(benchmark, results_dir, bench_cfg):
    results = benchmark.pedantic(
        availability_comparison, args=(bench_cfg,), rounds=1, iterations=1
    )
    checks = availability_checks(results)
    text = render_availability(results) + "\n\nshape checks:\n" + "\n".join(
        f"  {c}" for c in checks
    )
    save_and_print(results_dir, "availability", text)

    by_claim = {c.claim: c for c in checks}
    probe = max(p.fault_rate for p in results[0].points)
    assert by_claim[
        f"fault tolerance at u={probe}: TMIN kills more worms than DMIN"
    ].passed
    assert by_claim[
        f"fault tolerance at u={probe}: DMIN delivery ratio >= TMIN's"
    ].passed
    for label in ("TMIN", "DMIN", "VMIN", "BMIN"):
        assert by_claim[f"{label}: fault-free point is undegraded"].passed
