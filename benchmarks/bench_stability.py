#!/usr/bin/env python3
"""Prove the progress watchdog is (nearly) free on healthy traffic.

The watchdog (:class:`repro.stability.ProgressWatchdog`) added one
per-cycle hook to the engine loop: a ``None`` check, and once per
``check_every`` cycles a signature sweep over in-flight worms.  On
healthy (progressing) traffic it must never intervene -- so its whole
cost is bookkeeping.  This benchmark times three variants on the same
workload and FAILS (exit 1) if the watchdog-attached engine is more
than ``--threshold`` slower than the bare one (default x1.05 -- the
<=5% acceptance gate; smoke x1.15 for noisy CI runners).

For information only it also times the full overload stack (bounded
admission + AIMD governor + watchdog + retry), which *does* pay
per-offer and per-delivery work through the event bus.

Run::

    PYTHONPATH=src python benchmarks/bench_stability.py           # full
    PYTHONPATH=src python benchmarks/bench_stability.py --smoke   # CI

Timing protocol mirrors ``bench_obs_overhead.py``: fresh engines per
round, identical seeds, variants interleaved round-robin, best-of-N
compared.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

# Standalone-script bootstrap: make `python benchmarks/bench_stability.py`
# work without PYTHONPATH.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # pragma: no cover
    sys.path.insert(0, str(_SRC))

from repro.faults.recovery import RetryPolicy, SourceRetry  # noqa: E402
from repro.sim import Environment  # noqa: E402
from repro.sim.rng import RandomStream  # noqa: E402
from repro.stability import (  # noqa: E402
    AIMDConfig,
    AIMDGovernor,
    BoundedQueue,
    ProgressWatchdog,
)
from repro.traffic.clusters import global_cluster  # noqa: E402
from repro.traffic.patterns import UniformPattern  # noqa: E402
from repro.traffic.workload import MessageSizeModel, Workload  # noqa: E402
from repro.wormhole import WormholeEngine, build_network  # noqa: E402


def _attach_watchdog(engine: WormholeEngine) -> None:
    engine.watchdog = ProgressWatchdog(
        engine, check_every=64, stall_age=4096, deadlock_after=1024,
        recover=True,
    )


def _attach_full_stack(engine: WormholeEngine) -> SourceRetry:
    BoundedQueue(capacity=128).install(engine)
    governor = AIMDGovernor(engine, AIMDConfig())
    retry = SourceRetry(
        engine,
        RetryPolicy(max_attempts=3, base_delay=64.0, max_delay=512.0),
        RandomStream(7, name="retry"),
    )
    _attach_watchdog(engine)
    retry.governor = governor  # keep both alive on the engine's lifetime
    return retry


def _timed_run(kind, load, warmup, cycles, attach=None):
    """Wall seconds for `cycles` loaded cycles (after `warmup`)."""
    env = Environment()
    engine = WormholeEngine(
        env, build_network(kind, k=4, n=3), rng=RandomStream(1)
    )
    keepalive = attach(engine) if attach is not None else None
    workload = Workload(
        global_cluster(),
        UniformPattern,
        offered_load=load,
        sizes=MessageSizeModel.scaled(),
    )
    workload.install(env, engine, RandomStream(2))
    engine.start()
    env.run(until=warmup)
    t0 = time.perf_counter()  # lint-sim: ignore[RPV002] -- benchmark harness wall time
    env.run(until=warmup + cycles)
    wall = time.perf_counter() - t0  # lint-sim: ignore[RPV002] -- benchmark harness wall time
    if engine.stats.delivered_packets == 0:
        raise RuntimeError("benchmark run delivered nothing; config error")
    if engine.watchdog is not None and engine.watchdog.aborted:
        raise RuntimeError(
            "watchdog intervened on healthy traffic; overhead numbers "
            "would be meaningless"
        )
    del keepalive
    return wall


VARIANTS = (
    ("no watchdog baseline", None),
    ("watchdog attached", _attach_watchdog),
    ("full overload stack", _attach_full_stack),
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="quick CI mode")
    parser.add_argument("--rounds", type=int, default=None)
    parser.add_argument("--cycles", type=int, default=None)
    parser.add_argument("--warmup", type=int, default=500)
    parser.add_argument("--kind", default="dmin")
    parser.add_argument("--load", type=float, default=0.7)
    parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="max allowed (watchdog)/(baseline) wall ratio "
        "(default 1.05 -- the <=5%% gate; smoke 1.15 for noisy CI)",
    )
    args = parser.parse_args(argv)
    rounds = args.rounds or (3 if args.smoke else 7)
    cycles = args.cycles or (1_000 if args.smoke else 4_000)
    threshold = args.threshold or (1.15 if args.smoke else 1.05)

    best = {name: float("inf") for name, _ in VARIANTS}
    for _ in range(rounds):  # interleave variants within each round
        for name, attach in VARIANTS:
            wall = _timed_run(args.kind, args.load, args.warmup, cycles, attach)
            best[name] = min(best[name], wall)

    base = best["no watchdog baseline"]
    print(
        f"stability-overhead benchmark: {args.kind} @ load {args.load:g}, "
        f"{cycles} cycles x best-of-{rounds}"
    )
    for name, _ in VARIANTS:
        wall = best[name]
        print(
            f"  {name:24} {wall * 1e3:8.1f} ms  "
            f"({cycles / wall:>9,.0f} cyc/s)  x{wall / base:.3f}"
        )
    ratio = best["watchdog attached"] / base
    verdict = "PASS" if ratio <= threshold else "FAIL"
    print(
        f"[{verdict}] watchdog overhead x{ratio:.3f} "
        f"(threshold x{threshold:.2f})"
    )
    return 0 if ratio <= threshold else 1


if __name__ == "__main__":
    sys.exit(main())
