"""Extension bench: bisected saturation loads of the four networks.

Finds each network's highest sustainable offered load (queue <= 100)
under global uniform traffic by bisection.  The ordering is the paper's
headline in one number per design: DMIN > VMIN ~ BMIN > TMIN.
"""

from dataclasses import replace

from benchmarks.conftest import save_and_print
from repro.analysis.cost import cost_comparison
from repro.experiments.figures import FOUR_NETWORKS, uniform_workload
from repro.experiments.saturation import find_saturation
from repro.traffic.clusters import global_cluster


def _run_all(bench_cfg):
    # Long measurement windows: the queue<=100 criterion needs time to
    # bite at super-saturation loads.
    cfg = replace(bench_cfg, measure_packets=3000)
    wb = uniform_workload(global_cluster(), cfg)
    return {
        net.kind: (net.label, find_saturation(net, wb, cfg, tolerance=0.04))
        for net in FOUR_NETWORKS
    }


def test_saturation_ordering(benchmark, results_dir, bench_cfg):
    sats = benchmark.pedantic(_run_all, args=(bench_cfg,), rounds=1, iterations=1)
    costs = cost_comparison(4, 3)
    lines = ["bisected saturation loads, global uniform traffic", ""]
    lines.append(
        f"{'network':<22} {'sat load':>9} {'thr %':>7} {'latency':>9} {'gates':>7}"
    )
    for kind, (label, sat) in sats.items():
        lines.append(
            f"{label:<22} {sat.load:>9.3f} {sat.throughput_percent:>7.1f} "
            f"{sat.avg_latency:>9.1f} {costs[kind].total_gate_proxy:>7.0f}"
        )
    save_and_print(results_dir, "saturation", "\n".join(lines))

    load = {kind: sat.load for kind, (_, sat) in sats.items()}
    assert load["dmin"] >= max(load["tmin"], load["vmin"], load["bmin"])
    assert load["tmin"] <= min(load["dmin"], load["vmin"], load["bmin"]) + 0.05
