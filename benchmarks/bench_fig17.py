"""Regenerate Fig. 17: uneven cluster traffic ratios (4:1:1:1, 1:0:0:0).

Paper's claims: the butterfly's channel-shared clustering wins when
clusters are unevenly loaded; channel-reduced is worst; with ratio
1:0:0:0 the single active 16-node cluster caps aggregate throughput
near a quarter of the machine.
"""

from benchmarks.conftest import save_and_print
from repro.experiments.figures import fig17
from repro.experiments.report import render_figure, shape_checks


def test_fig17(benchmark, results_dir, bench_cfg):
    fig = benchmark.pedantic(fig17, args=(bench_cfg,), rounds=1, iterations=1)
    checks = shape_checks(fig)
    text = render_figure(fig) + "\n\nshape checks:\n" + "\n".join(
        f"  {c}" for c in checks
    )
    save_and_print(results_dir, "fig17", text)

    by_claim = {c.claim: c for c in checks}
    assert by_claim[
        "4:1:1:1: butterfly channel-shared is best (lowest latency "
        "at common loads)"
    ].passed
    assert by_claim["4:1:1:1: butterfly channel-reduced is worst"].passed
    assert by_claim["1:0:0:0: channel-shared beats channel-balanced"].passed
    assert by_claim["1:0:0:0: aggregate throughput capped near 25%"].passed
